"""Exact linear-system solving over an arbitrary field.

The traversal-rate equations of the decision graph (Figure 8 of the paper)
are a small square linear system whose coefficients are exact rationals in
the numeric analysis and rational functions of frequency symbols in the
symbolic analysis.  Both are *fields* for which Python's arithmetic operators
work, so a single fraction-free-ish Gaussian elimination with partial
"pivot on a non-zero entry" suffices — no floating point, no numpy, and the
same code path for Figures 5 and 8.

Values only need ``+``, ``-``, ``*``, ``/`` and a truthiness test for "is
zero" (``Fraction`` and :class:`~repro.symbolic.ratfunc.RatFunc` both
provide them).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Optional, Sequence, TypeVar

from ..exceptions import PerformanceError

Scalar = TypeVar("Scalar")


def _is_zero(value) -> bool:
    if hasattr(value, "is_zero"):
        return value.is_zero()
    return value == 0


def solve_linear_system(
    matrix: Sequence[Sequence[Scalar]],
    rhs: Sequence[Scalar],
    *,
    zero: Scalar = Fraction(0),
    one: Scalar = Fraction(1),
) -> List[Scalar]:
    """Solve ``matrix · x = rhs`` exactly by Gaussian elimination.

    Parameters
    ----------
    matrix:
        Square coefficient matrix (rows of equal length).
    rhs:
        Right-hand side, same length as ``matrix``.
    zero, one:
        The field's additive and multiplicative identities; pass
        ``RatFunc.zero()`` / ``RatFunc.one()`` for the symbolic field.

    Raises
    ------
    PerformanceError
        When the system is singular (the decision graph is not ergodic) or
        the dimensions are inconsistent.
    """
    size = len(matrix)
    if size == 0:
        return []
    if any(len(row) != size for row in matrix):
        raise PerformanceError("traversal-rate system matrix is not square")
    if len(rhs) != size:
        raise PerformanceError("traversal-rate system right-hand side has the wrong length")

    # Work on copies; rows are lists augmented with the RHS.
    rows: List[List[Scalar]] = [list(row) + [rhs_value] for row, rhs_value in zip(matrix, rhs)]

    for column in range(size):
        pivot_row: Optional[int] = None
        for candidate in range(column, size):
            if not _is_zero(rows[candidate][column]):
                pivot_row = candidate
                break
        if pivot_row is None:
            raise PerformanceError(
                "the traversal-rate equations are singular; the decision graph has no "
                "unique steady state (is it strongly connected?)"
            )
        rows[column], rows[pivot_row] = rows[pivot_row], rows[column]
        pivot = rows[column][column]
        # Normalize the pivot row.
        rows[column] = [value / pivot for value in rows[column]]
        for other in range(size):
            if other == column:
                continue
            factor = rows[other][column]
            if _is_zero(factor):
                continue
            rows[other] = [
                other_value - factor * pivot_value
                for other_value, pivot_value in zip(rows[other], rows[column])
            ]
    del zero, one  # identities are only needed by callers building the system
    return [row[size] for row in rows]


def solve_linear_systems(
    matrix: Sequence[Sequence[Scalar]],
    rhs_columns: Sequence[Sequence[Scalar]],
    *,
    zero: Scalar = Fraction(0),
    one: Scalar = Fraction(1),
) -> List[List[Scalar]]:
    """Solve ``matrix · x = rhs`` for several right-hand sides at once.

    One Gauss–Jordan elimination of the shared coefficient matrix serves all
    ``rhs_columns`` (the absorption equations solve one column per terminal
    class over the same transient matrix).  Returns one solution vector per
    column, in order.
    """
    size = len(matrix)
    if not rhs_columns:
        return []
    if size == 0:
        return [[] for _ in rhs_columns]
    if any(len(row) != size for row in matrix):
        raise PerformanceError("linear system matrix is not square")
    if any(len(column) != size for column in rhs_columns):
        raise PerformanceError("a linear system right-hand side has the wrong length")

    width = len(rhs_columns)
    rows: List[List[Scalar]] = [
        list(row) + [column[index] for column in rhs_columns]
        for index, row in enumerate(matrix)
    ]

    for column in range(size):
        pivot_row: Optional[int] = None
        for candidate in range(column, size):
            if not _is_zero(rows[candidate][column]):
                pivot_row = candidate
                break
        if pivot_row is None:
            raise PerformanceError(
                "the linear system is singular; no unique solution exists"
            )
        rows[column], rows[pivot_row] = rows[pivot_row], rows[column]
        pivot = rows[column][column]
        rows[column] = [value / pivot for value in rows[column]]
        for other in range(size):
            if other == column:
                continue
            factor = rows[other][column]
            if _is_zero(factor):
                continue
            rows[other] = [
                other_value - factor * pivot_value
                for other_value, pivot_value in zip(rows[other], rows[column])
            ]
    del zero, one  # identities are only needed by callers building the system
    return [
        [rows[index][size + position] for index in range(size)]
        for position in range(width)
    ]


def solve_stationary_weights(
    transition_probability: Callable[[int, int], Scalar],
    size: int,
    *,
    reference: int = 0,
    zero: Scalar = Fraction(0),
    one: Scalar = Fraction(1),
) -> List[Scalar]:
    """Solve ``v = v·P`` up to scale, fixing ``v[reference] = 1``.

    ``transition_probability(i, j)`` must return the total probability of
    moving from node ``i`` to node ``j`` (zero when there is no edge).  The
    returned weights are *relative visit rates*, the quantity the paper calls
    the rate of traversal once multiplied by branch probabilities.
    """
    if size == 0:
        return []
    if not 0 <= reference < size:
        raise PerformanceError(f"reference node index {reference} out of range")
    if size == 1:
        return [one]

    unknowns = [index for index in range(size) if index != reference]
    position = {node: column for column, node in enumerate(unknowns)}
    matrix: List[List[Scalar]] = []
    rhs: List[Scalar] = []
    for node in unknowns:
        # v[node] - sum_j P(j, node) * v[j] = P(reference, node) * v[reference]
        row = [zero for _ in unknowns]
        row[position[node]] = row[position[node]] + one
        for other in range(size):
            probability = transition_probability(other, node)
            if _is_zero(probability):
                continue
            if other == reference:
                continue
            row[position[other]] = row[position[other]] - probability
        matrix.append(row)
        rhs.append(transition_probability(reference, node) * one)

    solution = solve_linear_system(matrix, rhs, zero=zero, one=one)
    weights: List[Scalar] = []
    for index in range(size):
        if index == reference:
            weights.append(one)
        else:
            weights.append(solution[position[index]])
    return weights
