"""Performance measures derived from decision graphs and traversal rates.

With the traversal rates ``r_i`` and edge delays ``d_i`` in hand (Figures 5
and 8 of the paper), the relative amount of time spent on edge ``i`` is
``w_i = r_i · d_i``; every steady-state performance measure of the model is a
ratio of sums of such quantities:

* **cycle time** — the mean time between successive visits of the reference
  anchor is ``sum_i w_i`` when the rates are normalized to one visit;
* **throughput of a transition** — (expected firings of the transition per
  cycle) / (cycle time); the paper's protocol throughput is the special case
  "firings of the ack-accept transition per unit time";
* **utilization of a transition** — fraction of time the transition is
  firing, computed from the per-edge busy times;
* **edge time share** — the fraction of time spent traversing each decision
  edge, the quantity the paper tabulates as ``w_i``.

Everything works for both the numeric domain (values are
:class:`fractions.Fraction`) and the symbolic domain (values are
:class:`~repro.symbolic.ratfunc.RatFunc` over time and frequency symbols).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional, Union

from ..exceptions import PerformanceError
from ..reachability.decision import DecisionEdge, DecisionGraph
from ..symbolic.linexpr import LinExpr
from ..symbolic.ratfunc import RatFunc
from ..symbolic.symbols import Symbol
from .linear import _is_zero
from .traversal import (
    ErgodicDecomposition,
    TraversalRates,
    ergodic_decomposition,
)

Scalar = Union[Fraction, RatFunc]


def _as_scalar(value, symbolic: bool) -> Scalar:
    if symbolic:
        return RatFunc.coerce(value)
    if isinstance(value, LinExpr):
        return value.constant_value()
    return Fraction(value)


@dataclass(frozen=True)
class PerformanceReport:
    """A bundle of the headline measures for quick inspection / serialization."""

    cycle_time: Scalar
    throughput: Dict[str, Scalar]
    utilization: Dict[str, Scalar]
    edge_time_shares: Dict[int, Scalar]
    edge_rates: Dict[int, Scalar]

    def evaluate(self, bindings: Mapping[Symbol, object]) -> "PerformanceReport":
        """Numerically specialize a symbolic report."""
        def value_of(value: Scalar) -> Fraction:
            if isinstance(value, RatFunc):
                return value.evaluate(bindings)  # type: ignore[arg-type]
            return Fraction(value)

        return PerformanceReport(
            cycle_time=value_of(self.cycle_time),
            throughput={key: value_of(value) for key, value in self.throughput.items()},
            utilization={key: value_of(value) for key, value in self.utilization.items()},
            edge_time_shares={key: value_of(value) for key, value in self.edge_time_shares.items()},
            edge_rates={key: value_of(value) for key, value in self.edge_rates.items()},
        )


class PerformanceMetrics:
    """Compute performance measures for a decision graph.

    When the graph has a unique terminal class (every strict paper-shaped
    model) this is the classical traversal-rate computation.  When folded
    committed cycles give it several, each measure is the
    settling-probability-weighted expectation of the per-class measure —
    quantities linear in the rates come from the combined rates directly,
    ratios (throughput, utilization, frequencies) are formed per class and
    then weighted, which is the long-run expectation over the model's random
    transient.

    Parameters
    ----------
    decision:
        The decision graph (numeric or symbolic).
    rates:
        Pre-computed traversal rates; when supplied they are used as-is (the
        classical single-class computation).  When omitted, the ergodic
        decomposition is computed and multi-class graphs are handled as
        described above.
    """

    def __init__(self, decision: DecisionGraph, rates: Optional[TraversalRates] = None):
        self.decision = decision
        self.decomposition: Optional[ErgodicDecomposition] = None
        if rates is not None:
            self.rates = rates
        else:
            self.decomposition = ergodic_decomposition(decision)
            self.rates = self.decomposition.combined_rates()
        self.symbolic = decision.trg.symbolic
        self._class_metrics: Optional[list] = None

    def _per_class(self) -> Optional[list]:
        """Per-class (probability, metrics) pairs for ratio measures.

        ``None`` when the classical single-chain computation applies — either
        explicit rates were supplied or the graph has a unique terminal
        class (then ``self.rates`` already *is* that class's solution).
        """
        if self.decomposition is None or self.decomposition.is_ergodic:
            return None
        if self._class_metrics is None:
            self._class_metrics = [
                (terminal.probability, PerformanceMetrics(self.decision, terminal.rates))
                for terminal in self.decomposition.classes
            ]
        return self._class_metrics

    def _expected(self, measure) -> Scalar:
        """Settling-probability-weighted expectation of a per-class measure."""
        total: Scalar = RatFunc.zero() if self.symbolic else Fraction(0)
        for probability, metrics in self._per_class():
            if _is_zero(probability):
                continue
            total = total + probability * measure(metrics)
        return total

    # ------------------------------------------------------------------
    # Edge-level quantities
    # ------------------------------------------------------------------

    def edge_rate(self, edge: DecisionEdge | int) -> Scalar:
        """Traversal rate ``r_i`` of a decision edge."""
        return self.rates.rate_of_edge(edge)

    def edge_time_share(self, edge: DecisionEdge | int) -> Scalar:
        """``w_i = r_i · d_i`` — relative time spent traversing the edge."""
        edge_obj = self.decision.edges[edge] if isinstance(edge, int) else edge
        rate = self.rates.rate_of_edge(edge_obj)
        delay = _as_scalar(edge_obj.delay, self.symbolic)
        return rate * delay if not self.symbolic else RatFunc.coerce(rate) * RatFunc.coerce(edge_obj.delay)

    def edge_time_shares(self) -> Dict[int, Scalar]:
        """``w_i`` for every decision edge, keyed by edge index."""
        return {edge.index: self.edge_time_share(edge) for edge in self.decision.edges}

    # ------------------------------------------------------------------
    # Cycle-level quantities
    # ------------------------------------------------------------------

    def cycle_time(self) -> Scalar:
        """Mean time per visit of the reference anchor: ``sum_i r_i · d_i``.

        (With the solver's normalization the reference anchor is visited at
        rate 1, so this sum *is* the mean recurrence time of that anchor.)
        """
        shares = self.edge_time_shares()
        total: Scalar = RatFunc.zero() if self.symbolic else Fraction(0)
        for value in shares.values():
            total = total + value
        if (hasattr(total, "is_zero") and total.is_zero()) or total == 0:
            raise PerformanceError("the steady-state cycle has zero total time")
        return total

    def firings_per_cycle(self, transition_name: str, *, count: str = "fired") -> Scalar:
        """Expected number of times a transition begins (or completes) firing per cycle.

        ``count`` selects whether to count firing *starts* (``"fired"``,
        default) or firing *completions* (``"completed"``); the two coincide
        in steady state for the paper's models but may differ transiently.
        """
        if count not in ("fired", "completed"):
            raise ValueError("count must be 'fired' or 'completed'")
        total: Scalar = RatFunc.zero() if self.symbolic else Fraction(0)
        for edge in self.decision.edges:
            events = edge.fired if count == "fired" else edge.completed
            occurrences = sum(1 for name in events if name == transition_name)
            if occurrences:
                total = total + self.rates.rate_of_edge(edge) * occurrences
        return total

    def throughput(self, transition_name: str, *, count: str = "fired") -> Scalar:
        """Steady-state firing rate of a transition (firings per unit time).

        For the paper's protocol, ``throughput("t2")`` — the rate at which
        acknowledgements are accepted by the sender — is the protocol
        throughput in messages per millisecond.  With several terminal
        classes this is the expected long-run rate,
        ``sum_k p_k · throughput_k``.
        """
        per_class = self._per_class()
        if per_class is not None:
            return self._expected(lambda metrics: metrics.throughput(transition_name, count=count))
        return self.firings_per_cycle(transition_name, count=count) / self.cycle_time()

    def edge_traversal_frequency(self, edge: DecisionEdge | int) -> Scalar:
        """Traversals of an edge per unit time (``r_i`` / cycle time)."""
        per_class = self._per_class()
        if per_class is not None:
            return self._expected(lambda metrics: metrics.edge_traversal_frequency(edge))
        return self.rates.rate_of_edge(edge) / self.cycle_time()

    def utilization(self, transition_name: str) -> Scalar:
        """Long-run fraction of time the transition is firing.

        Computed edge by edge from the busy time the transition accumulates
        along each collapsed path; the result lies in [0, 1] for nets obeying
        the paper's single-firing restriction.  With several terminal
        classes this is the expected long-run fraction.
        """
        per_class = self._per_class()
        if per_class is not None:
            return self._expected(lambda metrics: metrics.utilization(transition_name))
        total: Scalar = RatFunc.zero() if self.symbolic else Fraction(0)
        for edge in self.decision.edges:
            busy = self.decision.busy_time(edge, transition_name)
            busy_scalar = RatFunc.coerce(busy) if self.symbolic else _as_scalar(busy, False)
            total = total + self.rates.rate_of_edge(edge) * busy_scalar
        return total / self.cycle_time()

    def anchor_visit_frequency(self, anchor: int) -> Scalar:
        """Visits of an anchor node per unit time."""
        per_class = self._per_class()
        if per_class is not None:
            return self._expected(lambda metrics: metrics.anchor_visit_frequency(anchor))
        return self.rates.rate_of_node(anchor) / self.cycle_time()

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------

    def report(self, transitions: Optional[list] = None) -> PerformanceReport:
        """Bundle the headline measures for the given transitions (default: all)."""
        names = transitions if transitions is not None else list(self.decision.trg.net.transition_order)
        return PerformanceReport(
            cycle_time=self.cycle_time(),
            throughput={name: self.throughput(name) for name in names},
            utilization={name: self.utilization(name) for name in names},
            edge_time_shares=self.edge_time_shares(),
            edge_rates=dict(self.rates.edge_rates),
        )
