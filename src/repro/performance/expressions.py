"""Named performance expressions.

A :class:`PerformanceExpression` wraps a value from any of the library's
scalar domains (exact number, affine time expression, rational function)
together with a name, a unit and provenance notes, and provides uniform
evaluation/substitution/rendering.  The objects returned by the high-level
:class:`repro.performance.evaluation.PerformanceAnalysis` API are of this
type, so downstream code can treat "the throughput" identically whether it
came out of the numeric Figure-5 pipeline or the symbolic Figure-8 pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Union

from ..symbolic.evaluate import evaluate_value
from ..symbolic.linexpr import LinExpr, NumberLike
from ..symbolic.polynomial import Polynomial
from ..symbolic.ratfunc import RatFunc
from ..symbolic.symbols import Symbol

ExpressionValue = Union[Fraction, LinExpr, Polynomial, RatFunc]


@dataclass(frozen=True)
class PerformanceExpression:
    """A named, documented performance quantity.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"throughput(t2)"`` or ``"cycle_time"``.
    value:
        The quantity itself (number or symbolic expression).
    unit:
        Free-text unit, e.g. ``"messages/ms"``.
    description:
        How the quantity was derived (shown in reports).
    """

    name: str
    value: ExpressionValue
    unit: str = ""
    description: str = ""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_symbolic(self) -> bool:
        """True when the value still contains free symbols."""
        if isinstance(value := self.value, (LinExpr,)):
            return not value.is_constant()
        if isinstance(value, (Polynomial, RatFunc)):
            return not value.is_constant()
        return False

    def symbols(self) -> frozenset:
        """Free symbols of the value (empty for numbers)."""
        if isinstance(self.value, (LinExpr, Polynomial, RatFunc)):
            return self.value.symbols()
        return frozenset()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, bindings: Mapping[Symbol, NumberLike] | None = None) -> Fraction:
        """Evaluate to an exact rational, binding every remaining symbol."""
        return evaluate_value(self.value, bindings)

    def evaluate_float(self, bindings: Mapping[Symbol, NumberLike] | None = None) -> float:
        """Evaluate to a float."""
        return float(self.evaluate(bindings))

    def substitute(self, bindings: Mapping[Symbol, object]) -> "PerformanceExpression":
        """Partially substitute symbols, keeping the result symbolic if needed."""
        value = self.value
        if isinstance(value, LinExpr):
            substituted: ExpressionValue = value.substitute(bindings)  # type: ignore[arg-type]
        elif isinstance(value, (Polynomial, RatFunc)):
            substituted = value.substitute(bindings)  # type: ignore[arg-type]
        else:
            substituted = value
        return PerformanceExpression(self.name, substituted, self.unit, self.description)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Human-readable one-liner: ``name = value [unit]``."""
        unit_text = f" [{self.unit}]" if self.unit else ""
        return f"{self.name} = {self.value}{unit_text}"

    def __str__(self) -> str:
        return self.render()
