"""Merlin–Farber Time Petri Nets (the competing time extension of Figure 2).

Section 1 of the paper contrasts its Timed Petri Nets (enabling + firing
times, tokens absorbed when firing begins) with Merlin and Farber's **Time
Petri Nets**, in which every transition carries a ``[min, max]`` static
firing interval, firings are instantaneous, and tokens stay on the input
places while the interval elapses.  This module implements that model —

* :class:`TimePetriNet` / :class:`IntervalTransition` — the model itself,
* :func:`timed_to_time_petri_net` — the Figure-2 translation of a Timed
  Petri Net into an equivalent Time Petri Net (each timed transition becomes
  a ``[E, E]`` start transition, an auxiliary "busy" place and a ``[F, F]``
  end transition),
* :class:`StateClassGraph` — the classical state-class reachability
  construction (Berthomieu/Menasche style interval domains), sufficient for
  the equivalence experiment E2 and for boundedness checks of Time Petri
  Nets.

The state-class construction uses the standard interval-domain
approximation: each enabled transition carries a firing interval, firing
``t_f`` requires ``min_f <= min_i(max_i)``, and persistent transitions'
intervals are shifted by the elapsed-time window.  For nets whose intervals
are points (``min = max``), as produced by the Figure-2 translation, the
construction is exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from ..exceptions import NetDefinitionError, UnboundedNetError
from ..petri.marking import Marking
from ..petri.multiset import Multiset
from ..petri.net import TimedPetriNet
from ..symbolic.linexpr import LinExpr, as_fraction

_INFINITY = Fraction(10**12)  # practical stand-in for an unbounded max time


def _to_fraction(value) -> Fraction:
    if isinstance(value, LinExpr):
        return value.constant_value()
    return as_fraction(value)


@dataclass(frozen=True)
class IntervalTransition:
    """A Time Petri Net transition with a static firing interval ``[min, max]``."""

    name: str
    inputs: Multiset
    outputs: Multiset
    min_time: Fraction
    max_time: Fraction
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", Multiset(self.inputs))
        object.__setattr__(self, "outputs", Multiset(self.outputs))
        object.__setattr__(self, "min_time", _to_fraction(self.min_time))
        object.__setattr__(self, "max_time", _to_fraction(self.max_time))
        if self.min_time < 0 or self.max_time < self.min_time:
            raise NetDefinitionError(
                f"transition {self.name!r} needs 0 <= min <= max, got "
                f"[{self.min_time}, {self.max_time}]"
            )


class TimePetriNet:
    """A Merlin–Farber Time Petri Net."""

    def __init__(
        self,
        name: str,
        places: List[str],
        transitions: List[IntervalTransition],
        initial_marking: Mapping[str, int],
    ):
        self.name = name
        self.place_order: Tuple[str, ...] = tuple(places)
        if len(set(self.place_order)) != len(self.place_order):
            raise NetDefinitionError("duplicate place names")
        self.transitions: Dict[str, IntervalTransition] = {}
        for transition in transitions:
            if transition.name in self.transitions:
                raise NetDefinitionError(f"duplicate transition {transition.name!r}")
            for bag in (transition.inputs, transition.outputs):
                for place in bag:
                    if place not in self.place_order:
                        raise NetDefinitionError(
                            f"transition {transition.name!r} references unknown place {place!r}"
                        )
            self.transitions[transition.name] = transition
        self.transition_order: Tuple[str, ...] = tuple(self.transitions)
        self.initial_marking = Marking(self.place_order, dict(initial_marking))

    def enabled_transitions(self, marking: Marking) -> Tuple[str, ...]:
        """Transitions whose input bag is covered by the marking."""
        return tuple(
            name
            for name in self.transition_order
            if marking.covers(self.transitions[name].inputs)
        )

    def fire(self, marking: Marking, transition_name: str) -> Marking:
        """Instantaneous firing (Time Petri Net firings take no time)."""
        transition = self.transitions[transition_name]
        return marking.remove(transition.inputs).add(transition.outputs)

    def __repr__(self) -> str:
        return (
            f"TimePetriNet(name={self.name!r}, places={len(self.place_order)}, "
            f"transitions={len(self.transition_order)})"
        )


# ---------------------------------------------------------------------------
# Figure-2 translation
# ---------------------------------------------------------------------------


def timed_to_time_petri_net(net: TimedPetriNet, *, busy_prefix: str = "busy_") -> TimePetriNet:
    """Translate a Timed Petri Net into an equivalent Time Petri Net (Figure 2).

    Every transition ``t`` with enabling time ``E`` and firing time ``F``
    becomes:

    * a start transition ``t`` with static interval ``[E, E]`` that absorbs
      ``I(t)`` into a fresh place ``busy_t`` (forcing the firing to begin as
      soon as the enabling time has elapsed, like the Timed Petri Net
      semantics), and
    * an end transition ``t__end`` with interval ``[F, F]`` moving the token
      from ``busy_t`` to ``O(t)``.

    The marking of the original places evolves identically in both models,
    which is what the equivalence experiment E2 checks.
    """
    if net.is_symbolic:
        raise NetDefinitionError("the Figure-2 translation requires a numeric net")
    places = list(net.place_order)
    transitions: List[IntervalTransition] = []
    for name in net.transition_order:
        transition = net.transition(name)
        busy_place = f"{busy_prefix}{name}"
        places.append(busy_place)
        enabling = _to_fraction(transition.enabling_time)
        firing = _to_fraction(transition.firing_time)
        transitions.append(
            IntervalTransition(
                name=name,
                inputs=transition.inputs,
                outputs=Multiset({busy_place: 1}),
                min_time=enabling,
                max_time=enabling,
                description=f"start of {name} (absorbs inputs after the enabling time)",
            )
        )
        transitions.append(
            IntervalTransition(
                name=f"{name}__end",
                inputs=Multiset({busy_place: 1}),
                outputs=transition.outputs,
                min_time=firing,
                max_time=firing,
                description=f"end of {name} (releases outputs after the firing time)",
            )
        )
    return TimePetriNet(
        f"{net.name}-time-pn",
        places,
        transitions,
        net.initial_marking.to_dict(),
    )


# ---------------------------------------------------------------------------
# State-class graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StateClass:
    """A state class: a marking plus an interval firing domain for enabled transitions."""

    marking: Marking
    intervals: Tuple[Tuple[str, Fraction, Fraction], ...]

    def interval_of(self, transition_name: str) -> Optional[Tuple[Fraction, Fraction]]:
        """Firing interval of an enabled transition (None when not enabled)."""
        for name, low, high in self.intervals:
            if name == transition_name:
                return (low, high)
        return None


@dataclass(frozen=True)
class StateClassEdge:
    """A firing edge between state classes."""

    source: int
    target: int
    transition: str


class StateClassGraph:
    """The state-class reachability graph of a Time Petri Net."""

    def __init__(self, net: TimePetriNet):
        self.net = net
        self.classes: List[StateClass] = []
        self.index_of: Dict[StateClass, int] = {}
        self.edges: List[StateClassEdge] = []

    @property
    def class_count(self) -> int:
        """Number of distinct state classes."""
        return len(self.classes)

    def markings(self) -> List[Marking]:
        """The distinct markings appearing in the graph."""
        seen = []
        for state_class in self.classes:
            if state_class.marking not in seen:
                seen.append(state_class.marking)
        return seen

    def markings_projected(self, places: Tuple[str, ...]) -> set:
        """Distinct markings restricted to a subset of places (for equivalence checks)."""
        projected = set()
        for state_class in self.classes:
            projected.add(
                tuple(state_class.marking[place] if place in state_class.marking.place_order else 0 for place in places)
            )
        return projected

    def __repr__(self) -> str:
        return f"StateClassGraph(classes={self.class_count}, edges={len(self.edges)})"


def state_class_graph(net: TimePetriNet, *, max_classes: int = 50_000) -> StateClassGraph:
    """Build the interval state-class graph of a Time Petri Net."""
    graph = StateClassGraph(net)

    def initial_class() -> StateClass:
        marking = net.initial_marking
        intervals = tuple(
            (name, net.transitions[name].min_time, net.transitions[name].max_time)
            for name in net.enabled_transitions(marking)
        )
        return StateClass(marking, intervals)

    def add(state_class: StateClass) -> Tuple[int, bool]:
        existing = graph.index_of.get(state_class)
        if existing is not None:
            return existing, False
        index = len(graph.classes)
        graph.classes.append(state_class)
        graph.index_of[state_class] = index
        return index, True

    root, _ = add(initial_class())
    queue = deque([root])
    while queue:
        index = queue.popleft()
        state_class = graph.classes[index]
        if not state_class.intervals:
            continue
        earliest_deadline = min(high for _, _, high in state_class.intervals)
        for name, low, high in state_class.intervals:
            if low > earliest_deadline:
                continue  # cannot fire before some other transition must
            new_marking = net.fire(state_class.marking, name)
            # Elapsed time window while waiting for `name`: [low, min(high, earliest_deadline)].
            elapsed_low = low
            elapsed_high = min(high, earliest_deadline)
            new_intervals: List[Tuple[str, Fraction, Fraction]] = []
            fired_once = False
            for other in net.enabled_transitions(new_marking):
                persistent = None
                for other_name, other_low, other_high in state_class.intervals:
                    if other_name == other:
                        persistent = (other_low, other_high)
                        break
                still_enabled_before = state_class.marking.covers(net.transitions[other].inputs)
                newly_enabled = (
                    persistent is None
                    or not still_enabled_before
                    or (other == name and not fired_once)
                )
                if other == name:
                    fired_once = True
                if newly_enabled or persistent is None:
                    new_intervals.append(
                        (other, net.transitions[other].min_time, net.transitions[other].max_time)
                    )
                else:
                    other_low, other_high = persistent
                    shifted_low = max(Fraction(0), other_low - elapsed_high)
                    shifted_high = max(Fraction(0), other_high - elapsed_low)
                    new_intervals.append((other, shifted_low, shifted_high))
            successor = StateClass(new_marking, tuple(sorted(new_intervals)))
            successor_index, is_new = add(successor)
            graph.edges.append(StateClassEdge(index, successor_index, name))
            if is_new:
                if graph.class_count > max_classes:
                    raise UnboundedNetError(f"state-class graph exceeded {max_classes} classes")
                queue.append(successor_index)
    return graph
