"""Merlin–Farber Time Petri Nets and the Figure-2 translation from Timed Petri Nets."""

from .tpn import (
    IntervalTransition,
    StateClass,
    StateClassEdge,
    StateClassGraph,
    TimePetriNet,
    state_class_graph,
    timed_to_time_petri_net,
)

__all__ = [
    "IntervalTransition",
    "StateClass",
    "StateClassEdge",
    "StateClassGraph",
    "TimePetriNet",
    "state_class_graph",
    "timed_to_time_petri_net",
]
