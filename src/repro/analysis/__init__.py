"""Content-addressed analysis pipeline.

``repro.analysis`` ties the whole pipeline — structural tables, timed /
untimed / coverability / GSPN graphs, decision collapse, performance
expressions — to the canonical net identity of
:mod:`repro.petri.fingerprint`:

* :class:`ArtifactCache` — a two-tier (in-memory LRU + optional SQLite
  disk) store of analysis artifacts keyed on ``(fingerprint, stage,
  params)``,
* :class:`AnalysisSession` — a facade that runs any stage through the
  cache and reports unified hit/miss/eviction statistics via
  :meth:`AnalysisSession.cache_report`,
* the compact timed-graph codec (:func:`encode_timed_graph` /
  :func:`decode_timed_graph`) that makes warm rehydration an order of
  magnitude cheaper than re-exploration while staying bit-identical.
"""

from .cache import (
    DEFAULT_MEMORY_LIMIT,
    DISK_FILE,
    TIER_BUILT,
    TIER_DISK,
    TIER_MEMORY,
    ArtifactCache,
    params_token,
)
from .codec import (
    CODEC_VERSION,
    decode_timed_graph,
    dump_with_graph,
    encode_timed_graph,
    load_with_graph,
)
from .session import (
    STAGE_COVERABILITY,
    STAGE_DECISION,
    STAGE_GSPN,
    STAGE_PERFORMANCE,
    STAGE_QUERY,
    STAGE_TIMED,
    STAGE_UNTIMED,
    AnalysisSession,
)

__all__ = [
    "AnalysisSession",
    "ArtifactCache",
    "CODEC_VERSION",
    "DEFAULT_MEMORY_LIMIT",
    "DISK_FILE",
    "STAGE_COVERABILITY",
    "STAGE_DECISION",
    "STAGE_GSPN",
    "STAGE_PERFORMANCE",
    "STAGE_QUERY",
    "STAGE_TIMED",
    "STAGE_UNTIMED",
    "TIER_BUILT",
    "TIER_DISK",
    "TIER_MEMORY",
    "decode_timed_graph",
    "dump_with_graph",
    "encode_timed_graph",
    "load_with_graph",
    "params_token",
]
