"""Two-tier content-addressed artifact cache.

:class:`ArtifactCache` stores analysis artifacts — structural tables,
reachability/coverability/GSPN graphs, decision graphs, performance
expressions — keyed on ``(net fingerprint, stage, params)``:

* an **in-memory tier**: an LRU-bounded ``OrderedDict`` holding decoded
  artifacts, so repeated requests within a process return the *same*
  object (like ``NetTables.of``),
* an optional **disk tier**: a single-file SQLite database of encoded
  payloads (the same pickle machinery and transaction discipline as
  :mod:`repro.engine.store`'s spill layer), so identical requests across
  process restarts hit disk instead of rebuilding.

Keys are plain strings — ``<fingerprint>/<presentation>/<stage>?<params>``
via :meth:`ArtifactCache.key_for` — deterministic across processes (no
Python ``hash()`` anywhere).  Artifacts whose natural serialized form is
not their pickle (timed graphs ride the compact codec of
:mod:`repro.analysis.codec`) pass explicit ``encode``/``decode`` callables
to :meth:`fetch`.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from collections import OrderedDict
from fractions import Fraction
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..engine import faults
from ..engine.store import _decode, _encode, locked_retry
from ..petri.fingerprint import net_cache_key
from ..petri.net import TimedPetriNet

#: Default bound of the in-memory artifact tier (decoded artifacts held at
#: once; graphs dominate, so the default is deliberately small).
DEFAULT_MEMORY_LIMIT = 32

#: Disk database file name inside a cache directory.
DISK_FILE = "artifacts.db"

#: Tier labels reported by :meth:`ArtifactCache.fetch`.
TIER_MEMORY = "memory"
TIER_DISK = "disk"
TIER_BUILT = "built"


def params_token(params: Optional[Mapping[str, object]]) -> str:
    """Canonical text of a stage's parameters, stable across processes.

    Keys are sorted; Fractions render as ``numerator/denominator``; nested
    mappings (e.g. GSPN rate assignments) are canonicalized recursively.
    """
    if not params:
        return ""

    def render(value: object) -> str:
        if isinstance(value, Fraction):
            return f"{value.numerator}/{value.denominator}"
        if isinstance(value, Mapping):
            inner = ",".join(
                f"{key}={render(value[key])}" for key in sorted(value)
            )
            return "{" + inner + "}"
        if isinstance(value, (list, tuple)):
            return "[" + ",".join(render(item) for item in value) + "]"
        return repr(value)

    return "&".join(f"{key}={render(params[key])}" for key in sorted(params))


class ArtifactCache:
    """In-memory LRU + optional SQLite disk tier for analysis artifacts.

    Parameters
    ----------
    directory:
        Cache directory for the disk tier (created on demand).  ``None``
        keeps the cache memory-only.
    memory_limit:
        Decoded artifacts held in the in-memory tier at once.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        memory_limit: int = DEFAULT_MEMORY_LIMIT,
    ):
        if not isinstance(memory_limit, int) or isinstance(memory_limit, bool) or memory_limit < 1:
            raise ValueError(
                f"memory_limit must be a positive integer, got {memory_limit!r}"
            )
        self.directory = directory
        self._memory: "OrderedDict[str, object]" = OrderedDict()
        self._memory_limit = memory_limit
        self._connection: Optional[sqlite3.Connection] = None
        # One cache instance may serve many request-handler threads (the
        # analysis server shares a single cache across its job pool).  The
        # lock serializes the memory tier, the counters and every statement
        # on the shared SQLite connection; builds themselves never run
        # under it.
        self._lock = threading.RLock()
        self._counters: Dict[str, int] = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
        }

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    @staticmethod
    def key_for(
        net: TimedPetriNet, stage: str, params: Optional[Mapping[str, object]] = None
    ) -> str:
        """The cache key of a stage run on ``net`` with ``params``.

        ``net_cache_key`` contributes both the content fingerprint and the
        declaration-order digest, so a hit is bit-identical to a cold
        build (see :mod:`repro.petri.fingerprint`).
        """
        return f"{net_cache_key(net)}/{stage}?{params_token(params)}"

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------

    def _connect(self, *, create: bool) -> Optional[sqlite3.Connection]:
        with self._lock:
            return self._connect_locked(create=create)

    def _connect_locked(self, *, create: bool) -> Optional[sqlite3.Connection]:
        if self._connection is not None:
            return self._connection
        if self.directory is None:
            return None
        path = os.path.join(self.directory, DISK_FILE)
        if not create and not os.path.exists(path):
            return None
        os.makedirs(self.directory, exist_ok=True)
        # The connection is shared across the server's worker threads;
        # self._lock serializes every statement on it.
        connection = sqlite3.connect(path, check_same_thread=False)
        # Same discipline as the engine's spill stores: throughput over
        # mid-transaction durability — a torn write loses a cache entry,
        # never correctness, because artifacts are rebuildable.
        connection.execute("PRAGMA journal_mode=TRUNCATE")
        connection.execute("PRAGMA synchronous=OFF")
        connection.execute(
            "CREATE TABLE IF NOT EXISTS artifacts ("
            "key TEXT PRIMARY KEY, stage TEXT NOT NULL, payload BLOB NOT NULL)"
        )
        connection.commit()
        self._connection = connection
        return connection

    def _disk_get(self, key: str) -> Optional[bytes]:
        connection = self._connect(create=False)
        if connection is None:
            return None

        # A concurrent writer holding the database (another analysis process
        # sharing the cache directory) is transient, not fatal — same
        # bounded-backoff retry as the engine's spill stores.  The lock is
        # taken inside the retried operation so backoff sleeps never hold it.
        def read():
            with self._lock:
                return connection.execute(
                    "SELECT payload FROM artifacts WHERE key = ?", (key,)
                ).fetchone()

        row = locked_retry(read, what=f"artifact cache read of {key!r}")
        return None if row is None else row[0]

    def _disk_put(self, key: str, stage: str, payload: bytes) -> None:
        connection = self._connect(create=True)
        if connection is None:
            return

        def write():
            with self._lock:
                faults.on_store_write()
                connection.execute(
                    "INSERT OR REPLACE INTO artifacts (key, stage, payload) "
                    "VALUES (?, ?, ?)",
                    (key, stage, payload),
                )
                connection.commit()

        locked_retry(write, what=f"artifact cache write of {key!r}")

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------

    def _memory_put(self, key: str, artifact: object) -> None:
        with self._lock:
            self._memory[key] = artifact
            self._memory.move_to_end(key)
            while len(self._memory) > self._memory_limit:
                self._memory.popitem(last=False)
                self._counters["evictions"] += 1

    # ------------------------------------------------------------------
    # The one lookup path
    # ------------------------------------------------------------------

    def fetch(
        self,
        key: str,
        *,
        stage: str,
        build: Callable[[], object],
        encode: Callable[[object], bytes] = _encode,
        decode: Callable[[bytes], object] = _decode,
    ) -> Tuple[object, str]:
        """The artifact under ``key``, building and storing on miss.

        Returns ``(artifact, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"`` or ``"built"``.  Disk hits are decoded once and promoted
        to the memory tier.
        """
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self._counters["memory_hits"] += 1
                return cached, TIER_MEMORY
        payload = self._disk_get(key)
        if payload is not None:
            artifact = decode(payload)
            with self._lock:
                self._counters["disk_hits"] += 1
            self._memory_put(key, artifact)
            return artifact, TIER_DISK
        with self._lock:
            self._counters["misses"] += 1
        # The build itself runs outside the lock: one slow build must not
        # serialize every other thread's cache traffic.
        artifact = build()
        self._disk_put(key, stage, encode(artifact))
        with self._lock:
            self._counters["stores"] += 1
        self._memory_put(key, artifact)
        return artifact, TIER_BUILT

    # ------------------------------------------------------------------
    # Maintenance / reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counters plus current occupancy of both tiers.

        The disk scan runs under the same :func:`locked_retry` bounded
        backoff as :meth:`fetch`'s read/write paths: a concurrent writer
        sharing the cache directory (an analysis server's job pool, or
        ``repro-tpn cache stats`` next to a running analysis) holds the
        database only transiently, and must surface as a retried wait — or
        a typed :class:`~repro.exceptions.StoreError` — never as a raw
        ``sqlite3.OperationalError``.
        """
        with self._lock:
            stats: Dict[str, object] = dict(self._counters)
            stats["memory_entries"] = len(self._memory)
            stats["memory_limit"] = self._memory_limit
        connection = self._connect(create=False)
        if connection is not None:

            def scan():
                with self._lock:
                    faults.on_store_write()
                    row = connection.execute(
                        "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
                        "FROM artifacts"
                    ).fetchone()
                    by_stage = connection.execute(
                        "SELECT stage, COUNT(*) FROM artifacts "
                        "GROUP BY stage ORDER BY stage"
                    ).fetchall()
                    return row, by_stage

            row, by_stage = locked_retry(scan, what="artifact cache stats scan")
            stats["disk_entries"], stats["disk_bytes"] = row
            stats["disk_stages"] = {stage: count for stage, count in by_stage}
        else:
            stats["disk_entries"] = 0
            stats["disk_bytes"] = 0
            stats["disk_stages"] = {}
        return stats

    def clear(self) -> int:
        """Drop both tiers; returns the number of disk entries removed.

        Like :meth:`stats`, the delete transaction runs under
        :func:`locked_retry` so a concurrent writer sharing the directory
        cannot make it raise a raw ``sqlite3.OperationalError``.
        """
        with self._lock:
            self._memory.clear()
        connection = self._connect(create=False)
        if connection is None:
            return 0

        def wipe():
            with self._lock:
                faults.on_store_write()
                (count,) = connection.execute(
                    "SELECT COUNT(*) FROM artifacts"
                ).fetchone()
                connection.execute("DELETE FROM artifacts")
                connection.commit()
                return count

        return locked_retry(wipe, what="artifact cache clear")

    def close(self) -> None:
        """Close the disk connection (the cache directory stays reopenable)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "ArtifactCache":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = [
    "ArtifactCache",
    "DEFAULT_MEMORY_LIMIT",
    "DISK_FILE",
    "TIER_BUILT",
    "TIER_DISK",
    "TIER_MEMORY",
    "params_token",
]
