"""The content-addressed analysis pipeline facade.

:class:`AnalysisSession` runs every stage of the Razouk pipeline —
structural tables, timed/untimed/coverability/GSPN graphs, decision
collapse, performance expressions — through one
:class:`~repro.analysis.cache.ArtifactCache`, keyed on the net's content
fingerprint (:mod:`repro.petri.fingerprint`) plus the stage and its
parameters.  Within a process, repeated stages return the same objects;
with a cache directory, repeated *processes* hit disk instead of
rebuilding, bit-identically (the differential suite asserts it for every
bundled workload).

The session also unifies the tree's scattered cache telemetry —
``branch_cache_stats()``, ``intern_stats()``, the shared-tables memo of
``NetTables.of`` and the artifact tiers — into one :meth:`cache_report`.
"""

from __future__ import annotations

import pickle
import threading
from typing import Dict, Mapping, Optional

from ..engine.tables import NetTables, tables_cache_stats
from ..performance.evaluation import PerformanceAnalysis
from ..petri.fingerprint import constraints_digest
from ..petri.net import TimedPetriNet
from ..petri.untimed import coverability_graph as build_coverability_graph
from ..petri.untimed import reachability_graph as build_untimed_graph
from ..reachability.algebra import branch_cache_stats
from ..reachability.decision import DecisionGraph, decision_graph
from ..reachability.graph import (
    TimedReachabilityGraph,
    symbolic_timed_reachability_graph,
    timed_reachability_graph,
)
from ..stochastic.gspn import GSPNAnalysis, GSPNResult
from ..symbolic.constraints import ConstraintSet
from ..symbolic.interning import intern_stats
from .cache import ArtifactCache
from .codec import decode_timed_graph, dump_with_graph, encode_timed_graph, load_with_graph

#: Stage names used in cache keys and reports.
STAGE_TIMED = "timed-graph"
STAGE_UNTIMED = "untimed-graph"
STAGE_COVERABILITY = "coverability-graph"
STAGE_GSPN = "gspn-solution"
STAGE_DECISION = "decision-graph"
STAGE_PERFORMANCE = "performance"
STAGE_QUERY = "query"


class AnalysisSession:
    """Run analysis stages through a content-addressed artifact cache.

    Parameters
    ----------
    cache:
        An explicit :class:`ArtifactCache` to share between sessions.
    cache_dir:
        Convenience: build a cache with this disk directory (ignored when
        ``cache`` is given).  ``None`` keeps artifacts memory-only.
    memory_limit:
        Memory-tier bound when the session builds its own cache.

    Stage parameters that select *what* is computed (``max_states``, rates,
    capacities, time units, constraint sets) participate in cache keys.
    Parameters that only select *how* (``engine=``, ``workers=`` — all
    engines are bit-identical by the differential gate) do not: they steer
    cold builds and are irrelevant on hits.
    """

    def __init__(
        self,
        *,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[str] = None,
        memory_limit: Optional[int] = None,
    ):
        if cache is None:
            kwargs = {} if memory_limit is None else {"memory_limit": memory_limit}
            cache = ArtifactCache(cache_dir, **kwargs)
        self.cache = cache
        #: Per-stage tier counts, e.g. ``{"timed-graph": {"built": 1, "disk": 2}}``.
        self.stage_outcomes: Dict[str, Dict[str, int]] = {}
        # Sessions may be driven from several threads at once (the analysis
        # server shares one cache but hands each job its own session; a
        # shared session must still not corrupt its outcome counts).
        self._outcomes_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _fetch(self, net, stage, params, build, *, encode=None, decode=None):
        artifact, _tier = self.fetch_tiered(
            net, stage, params, build, encode=encode, decode=decode
        )
        return artifact

    def fetch_tiered(self, net, stage, params, build, *, encode=None, decode=None):
        """Run ``build`` through the cache, returning ``(artifact, tier)``.

        The tier is one of the :class:`ArtifactCache` tier labels
        (``"memory"``/``"disk"``/``"built"``); the analysis server reports
        it back to clients so cache behaviour is observable per request.
        """
        key = ArtifactCache.key_for(net, stage, params)
        kwargs = {}
        if encode is not None:
            kwargs["encode"] = encode
        if decode is not None:
            kwargs["decode"] = decode
        artifact, tier = self.cache.fetch(key, stage=stage, build=build, **kwargs)
        with self._outcomes_lock:
            per_stage = self.stage_outcomes.setdefault(stage, {})
            per_stage[tier] = per_stage.get(tier, 0) + 1
        return artifact, tier

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def tables(self, net: TimedPetriNet) -> NetTables:
        """The shared structural tables (already content-keyed process-wide)."""
        return NetTables.of(net)

    def timed_graph(
        self,
        net: TimedPetriNet,
        constraints: Optional[ConstraintSet] = None,
        *,
        max_states: int = 100_000,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> TimedReachabilityGraph:
        """The (numeric or symbolic) timed reachability graph, cached.

        Stored through the compact codec of :mod:`repro.analysis.codec`;
        a disk hit rehydrates in a fraction of the exploration cost.
        """
        params = {"max_states": max_states, "constraints": constraints_digest(constraints)}
        build_kwargs: Dict[str, object] = {"max_states": max_states}
        if engine is not None:
            build_kwargs["engine"] = engine
        if workers is not None:
            build_kwargs["workers"] = workers

        def build():
            if constraints is not None or net.is_symbolic:
                return symbolic_timed_reachability_graph(
                    net, constraints if constraints is not None else ConstraintSet(), **build_kwargs
                )
            return timed_reachability_graph(net, **build_kwargs)

        return self._fetch(
            net,
            STAGE_TIMED,
            params,
            build,
            encode=encode_timed_graph,
            decode=lambda blob: decode_timed_graph(blob, net),
        )

    def untimed_graph(self, net: TimedPetriNet, *, max_states: int = 100_000, **build_kwargs):
        """The untimed reachability graph, cached (pickled wholesale)."""
        return self._fetch(
            net,
            STAGE_UNTIMED,
            {"max_states": max_states},
            lambda: build_untimed_graph(net, max_states=max_states, **build_kwargs),
        )

    def coverability_graph(self, net: TimedPetriNet, *, max_nodes: int = 50_000, **build_kwargs):
        """The Karp–Miller coverability graph, cached (pickled wholesale)."""
        return self._fetch(
            net,
            STAGE_COVERABILITY,
            {"max_nodes": max_nodes},
            lambda: build_coverability_graph(net, max_nodes=max_nodes, **build_kwargs),
        )

    def gspn_solution(
        self,
        net: TimedPetriNet,
        *,
        rates: Optional[Mapping[str, float]] = None,
        max_states: int = 50_000,
        place_capacity: Optional[int] = None,
        **build_kwargs,
    ) -> GSPNResult:
        """The stationary GSPN solution (tangible states, throughput, ...), cached."""
        params = {
            "max_states": max_states,
            "place_capacity": place_capacity,
            "rates": {name: float(value) for name, value in (rates or {}).items()},
        }

        def build():
            return GSPNAnalysis(
                net,
                rates=rates,
                max_states=max_states,
                place_capacity=place_capacity,
                **build_kwargs,
            ).solve()

        return self._fetch(net, STAGE_GSPN, params, build)

    def decision(
        self,
        net: TimedPetriNet,
        constraints: Optional[ConstraintSet] = None,
        *,
        max_states: int = 100_000,
        fold_cycles: bool = True,
    ) -> DecisionGraph:
        """The decision-graph collapse of the timed graph, cached.

        The artifact stores the collapse with its reachability graph
        swapped for a stub, so a hit shares the (cached) timed-graph
        instance instead of rehydrating a second copy.
        """
        params = {
            "max_states": max_states,
            "constraints": constraints_digest(constraints),
            "fold_cycles": fold_cycles,
        }

        def build():
            graph = self.timed_graph(net, constraints, max_states=max_states)
            return decision_graph(graph, fold_cycles=fold_cycles)

        def encode(collapse: DecisionGraph) -> bytes:
            graph_blob, artifact_blob = dump_with_graph(collapse, collapse.trg)
            return pickle.dumps((graph_blob, artifact_blob), protocol=pickle.HIGHEST_PROTOCOL)

        def decode(payload: bytes) -> DecisionGraph:
            graph_blob, artifact_blob = pickle.loads(payload)
            graph = self.timed_graph(net, constraints, max_states=max_states)
            _, collapse = load_with_graph(graph_blob, artifact_blob, net, graph=graph)
            return collapse

        return self._fetch(net, STAGE_DECISION, params, build, encode=encode, decode=decode)

    def performance(
        self,
        net: TimedPetriNet,
        constraints: Optional[ConstraintSet] = None,
        *,
        max_states: int = 100_000,
        time_unit: str = "ms",
    ) -> PerformanceAnalysis:
        """The end-to-end performance analysis, cached.

        Like :meth:`decision`, the stored artifact references the timed
        graph through a stub; a hit rehydrates the decision graph, rates
        and metrics and re-links them to the cached graph.
        """
        params = {
            "max_states": max_states,
            "constraints": constraints_digest(constraints),
            "time_unit": time_unit,
        }

        def build():
            graph = self.timed_graph(net, constraints, max_states=max_states)
            return PerformanceAnalysis(
                net, constraints, max_states=max_states, time_unit=time_unit,
                reachability=graph,
            )

        def encode(analysis: PerformanceAnalysis) -> bytes:
            graph_blob, artifact_blob = dump_with_graph(analysis, analysis.reachability)
            return pickle.dumps((graph_blob, artifact_blob), protocol=pickle.HIGHEST_PROTOCOL)

        def decode(payload: bytes) -> PerformanceAnalysis:
            graph_blob, artifact_blob = pickle.loads(payload)
            graph = self.timed_graph(net, constraints, max_states=max_states)
            _, analysis = load_with_graph(graph_blob, artifact_blob, net, graph=graph)
            return analysis

        return self._fetch(net, STAGE_PERFORMANCE, params, build, encode=encode, decode=decode)

    def query(
        self,
        net: TimedPetriNet,
        kind: str,
        *,
        target: Optional[Mapping[str, int]] = None,
        place: Optional[str] = None,
        k: Optional[int] = None,
        max_states: int = 100_000,
        **build_kwargs,
    ):
        """An early-terminating reachability query, cached.

        ``kind`` selects the question: ``"reachable"`` (requires
        ``target``), ``"bound"`` (requires ``place`` and ``k``) or
        ``"deadlock"``.  The :class:`~repro.engine.query.QueryResult` is
        cached like any other artifact — a definitive answer on an
        unchanged net never re-explores.
        """
        from ..engine import query as queries

        params: Dict[str, object] = {"kind": kind, "max_states": max_states}
        if kind == "reachable":
            if target is None:
                raise ValueError("query kind 'reachable' requires a target marking")
            params["target"] = {name: int(count) for name, count in target.items()}
            build = lambda: queries.is_reachable(  # noqa: E731
                net, target, max_states=max_states, **build_kwargs
            )
        elif kind == "bound":
            if place is None or k is None:
                raise ValueError("query kind 'bound' requires place and k")
            params["place"] = place
            params["k"] = int(k)
            build = lambda: queries.bound_check(  # noqa: E731
                net, place, int(k), max_states=max_states, **build_kwargs
            )
        elif kind == "deadlock":
            build = lambda: queries.find_deadlock(  # noqa: E731
                net, max_states=max_states, **build_kwargs
            )
        else:
            raise ValueError(
                f"unknown query kind {kind!r}; expected 'reachable', 'bound' or 'deadlock'"
            )
        return self._fetch(net, STAGE_QUERY, params, build)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def cache_report(self) -> Dict[str, object]:
        """One unified hit/miss/eviction report across every cache surface.

        Absorbs the artifact tiers, the per-stage outcome counts of this
        session, the content-keyed shared-tables memo of ``NetTables.of``,
        the branch-probability caches (already content-addressed: keyed on
        conflict-set frequency tuples) and the symbolic intern tables.
        """
        return {
            "artifacts": self.cache.stats(),
            "stages": {stage: dict(counts) for stage, counts in self.stage_outcomes.items()},
            "tables": tables_cache_stats(),
            "branch": branch_cache_stats(),
            "intern": intern_stats(),
        }

    def close(self) -> None:
        self.cache.close()

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = [
    "AnalysisSession",
    "STAGE_COVERABILITY",
    "STAGE_DECISION",
    "STAGE_GSPN",
    "STAGE_PERFORMANCE",
    "STAGE_QUERY",
    "STAGE_TIMED",
    "STAGE_UNTIMED",
]
