"""Compact artifact codec for timed reachability graphs.

A :class:`~repro.reachability.graph.TimedReachabilityGraph` pickles
naively as ~35k :class:`TimedState` objects, each rebuilding its marking
dict, re-validating clock entries and re-deriving hashes — rehydration then
costs almost as much as the exploration it was meant to replace.  This
module stores the graph the way the engine thinks about it instead:

* one **value table** of the distinct scalar clock/delay/probability values
  (a 35k-state lossy window graph holds barely a few dozen distinct
  Fractions, yet naive pickling rebuilds 86k of them),
* one **marking table** of the distinct token distributions (timed states
  massively share markings — they differ in clocks),
* one **clock-map table** of the distinct RET/RFT mappings, decoded once
  into dicts that the rebuilt states *share* (safe: ``TimedState`` never
  mutates its clock dicts),
* columnar index lists for the per-state and per-edge fields.

Decoding rebuilds the public objects through trusted constructors
(``Marking._trusted``, ``object.__new__`` for states/nodes/edges) and
defers the graph's ``index_of`` dict (see
:attr:`TimedReachabilityGraph.index_of`), so a cache hit rehydrates in a
small fraction of a cold build while remaining **bit-identical**: same node
order, same edge order, same delays/probabilities/labels, equal states.

The net itself is *not* stored — artifacts are keyed by the net's content
fingerprint, so the decoder attaches the requesting (content-equal) net.
:func:`dump_with_graph` / :func:`load_with_graph` extend the same idea to
artifacts that *reference* a timed graph (decision graphs, performance
analyses): the referenced graph is swapped out for a persistent-id stub and
re-linked to a codec-decoded graph on load, so downstream artifacts stay
small and share one rehydrated graph instance.
"""

from __future__ import annotations

import io
import pickle
from typing import Dict, List, Optional, Tuple

from ..petri.marking import Marking
from ..petri.net import TimedPetriNet
from ..reachability.graph import TimedEdge, TimedNode, TimedReachabilityGraph
from ..reachability.state import TimedState
from ..reachability.successors import STEP_ADVANCE, STEP_FIRE

#: Bump when the payload layout changes; decode rejects other versions.
CODEC_VERSION = 1

_KINDS = (STEP_FIRE, STEP_ADVANCE)
_KIND_INDEX = {kind: index for index, kind in enumerate(_KINDS)}

#: Persistent-id tags of :func:`dump_with_graph` payloads.
_PID_GRAPH = "timed-graph"
_PID_NET = "net"


def _intern(table: Dict, rows: List, key) -> int:
    """Index of ``key`` in ``table``/``rows``, appending on first sight."""
    index = table.get(key)
    if index is None:
        index = len(rows)
        table[key] = index
        rows.append(key)
    return index


def encode_timed_graph(graph: TimedReachabilityGraph) -> bytes:
    """Serialize a timed reachability graph into the compact payload."""
    value_table: Dict[tuple, int] = {}
    values: List[object] = []

    def value_of(scalar) -> int:
        # Key by (type, value): a constant LinExpr and an equal Fraction
        # must decode back to their original types.
        key = (scalar.__class__.__name__, scalar)
        index = value_table.get(key)
        if index is None:
            index = len(values)
            value_table[key] = index
            values.append(scalar)
        return index

    transition_index = {
        name: index for index, name in enumerate(graph.net.transition_order)
    }
    place_index = {name: index for index, name in enumerate(graph.net.place_order)}

    marking_table: Dict[tuple, int] = {}
    markings: List[tuple] = []
    clock_table: Dict[tuple, int] = {}
    clock_maps: List[tuple] = []

    def clock_of(entries: Dict[str, object]) -> int:
        key = tuple(
            (transition_index[name], value_of(value)) for name, value in entries.items()
        )
        return _intern(clock_table, clock_maps, key)

    state_marking: List[int] = []
    state_ret: List[int] = []
    state_rft: List[int] = []
    for node in graph.nodes:
        state = node.state
        # _tokens holds exactly the strictly positive counts — the invariant
        # Marking._trusted expects back on decode.
        marking_key = tuple(
            (place_index[place], count) for place, count in state.marking._tokens.items()
        )
        state_marking.append(_intern(marking_table, markings, marking_key))
        state_ret.append(clock_of(state._ret))
        state_rft.append(clock_of(state._rft))

    name_table: Dict[tuple, int] = {}
    name_tuples: List[tuple] = []
    label_table: Dict[tuple, int] = {}
    label_tuples: List[tuple] = []

    edge_source: List[int] = []
    edge_target: List[int] = []
    edge_delay: List[int] = []
    edge_probability: List[int] = []
    edge_fired: List[int] = []
    edge_completed: List[int] = []
    edge_kind: List[int] = []
    edge_used: List[int] = []
    for edge in graph.edges:
        edge_source.append(edge.source)
        edge_target.append(edge.target)
        edge_delay.append(value_of(edge.delay))
        edge_probability.append(value_of(edge.probability))
        edge_fired.append(
            _intern(name_table, name_tuples, tuple(transition_index[n] for n in edge.fired))
        )
        edge_completed.append(
            _intern(name_table, name_tuples, tuple(transition_index[n] for n in edge.completed))
        )
        edge_kind.append(_KIND_INDEX[edge.kind])
        edge_used.append(_intern(label_table, label_tuples, edge.used_constraints))

    payload = {
        "version": CODEC_VERSION,
        "symbolic": graph.symbolic,
        "constraints": graph.constraints,
        "initial_index": graph.initial_index,
        "build_stats": graph._build_stats,
        "values": values,
        "markings": markings,
        "clock_maps": clock_maps,
        "state_marking": state_marking,
        "state_ret": state_ret,
        "state_rft": state_rft,
        "name_tuples": name_tuples,
        "label_tuples": label_tuples,
        "edge_source": edge_source,
        "edge_target": edge_target,
        "edge_delay": edge_delay,
        "edge_probability": edge_probability,
        "edge_fired": edge_fired,
        "edge_completed": edge_completed,
        "edge_kind": edge_kind,
        "edge_used": edge_used,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def decode_timed_graph(blob: bytes, net: TimedPetriNet) -> TimedReachabilityGraph:
    """Rehydrate a timed reachability graph for a content-equal ``net``."""
    payload = pickle.loads(blob)
    if payload["version"] != CODEC_VERSION:
        raise ValueError(
            f"unsupported timed-graph payload version {payload['version']!r}"
        )
    values = payload["values"]
    place_order = net.place_order
    known_places = frozenset(place_order)
    transition_order = net.transition_order

    shared_markings = [
        Marking._trusted(
            place_order,
            known_places,
            {place_order[place]: count for place, count in entry},
        )
        for entry in payload["markings"]
    ]
    shared_clock_maps = [
        {transition_order[transition]: values[value] for transition, value in entry}
        for entry in payload["clock_maps"]
    ]

    graph = TimedReachabilityGraph(
        net, symbolic=payload["symbolic"], constraints=payload["constraints"]
    )
    graph.initial_index = payload["initial_index"]
    graph._build_stats = payload["build_stats"]
    graph._index_of = None  # rebuilt lazily on first by-state lookup

    new_state = TimedState.__new__
    nodes: List[TimedNode] = []
    for index, (marking, ret, rft) in enumerate(
        zip(payload["state_marking"], payload["state_ret"], payload["state_rft"])
    ):
        state = new_state(TimedState)
        state.marking = shared_markings[marking]
        state._ret = shared_clock_maps[ret]
        state._rft = shared_clock_maps[rft]
        state._hash = None
        node = object.__new__(TimedNode)
        node.__dict__ = {
            "index": index,
            "state": state,
            "successor_edges": [],
            "predecessor_edges": [],
        }
        nodes.append(node)
    graph.nodes = nodes

    name_tuples = [
        tuple(transition_order[index] for index in entry)
        for entry in payload["name_tuples"]
    ]
    label_tuples = payload["label_tuples"]
    edges: List[TimedEdge] = []
    for index, (source, target, delay, probability, fired, completed, kind, used) in enumerate(
        zip(
            payload["edge_source"],
            payload["edge_target"],
            payload["edge_delay"],
            payload["edge_probability"],
            payload["edge_fired"],
            payload["edge_completed"],
            payload["edge_kind"],
            payload["edge_used"],
        )
    ):
        # TimedEdge is a frozen dataclass; updating __dict__ in place skips
        # the generated __init__'s per-field object.__setattr__ calls.
        edge = object.__new__(TimedEdge)
        edge.__dict__.update({
            "index": index,
            "source": source,
            "target": target,
            "delay": values[delay],
            "probability": values[probability],
            "fired": name_tuples[fired],
            "completed": name_tuples[completed],
            "kind": _KINDS[kind],
            "used_constraints": label_tuples[used],
        })
        edges.append(edge)
        nodes[source].successor_edges.append(index)
        nodes[target].predecessor_edges.append(index)
    graph.edges = edges
    return graph


# ---------------------------------------------------------------------------
# Graph-referencing artifacts (decision graphs, performance analyses)
# ---------------------------------------------------------------------------


class _StrippingPickler(pickle.Pickler):
    """Pickle an object graph with its timed graph and net swapped for stubs."""

    def __init__(self, buffer, graph: TimedReachabilityGraph, net: TimedPetriNet):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._graph = graph
        self._net = net

    def persistent_id(self, obj):
        if obj is self._graph:
            return _PID_GRAPH
        if obj is self._net:
            return _PID_NET
        return None


class _LinkingUnpickler(pickle.Unpickler):
    """Resolve the stubs back to a rehydrated graph and the requesting net."""

    def __init__(self, buffer, graph: TimedReachabilityGraph, net: TimedPetriNet):
        super().__init__(buffer)
        self._graph = graph
        self._net = net

    def persistent_load(self, pid):
        if pid == _PID_GRAPH:
            return self._graph
        if pid == _PID_NET:
            return self._net
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dump_with_graph(artifact, graph: TimedReachabilityGraph) -> Tuple[bytes, bytes]:
    """Serialize ``artifact`` with its referenced ``graph`` codec-encoded.

    Returns ``(graph_blob, artifact_blob)``.  Every reference to ``graph``
    (and to ``graph.net``) inside ``artifact`` — however deeply nested — is
    replaced by a stub, so the artifact blob stays small and the expensive
    part rides the compact codec.
    """
    buffer = io.BytesIO()
    _StrippingPickler(buffer, graph, graph.net).dump(artifact)
    return encode_timed_graph(graph), buffer.getvalue()


def load_with_graph(
    graph_blob: bytes,
    artifact_blob: bytes,
    net: TimedPetriNet,
    *,
    graph: Optional[TimedReachabilityGraph] = None,
):
    """Rehydrate an artifact stored by :func:`dump_with_graph`.

    ``graph`` short-circuits the graph decode when the caller already holds
    the rehydrated graph of the same cache entry (an
    :class:`~repro.analysis.session.AnalysisSession` fetching the decision
    stage after the timed-graph stage), so both artifacts share one
    instance.  Returns ``(graph, artifact)``.
    """
    if graph is None:
        graph = decode_timed_graph(graph_blob, net)
    artifact = _LinkingUnpickler(io.BytesIO(artifact_blob), graph, net).load()
    return graph, artifact


__all__ = [
    "CODEC_VERSION",
    "decode_timed_graph",
    "dump_with_graph",
    "encode_timed_graph",
    "load_with_graph",
]
