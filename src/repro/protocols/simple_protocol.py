"""The paper's running example: a simple unnumbered message/acknowledgement protocol.

Figure 1 of the paper models a stop-and-wait style protocol without sequence
numbers: the sender transmits a packet and waits; the medium may deliver or
lose the packet; the receiver acknowledges immediately; the medium may
deliver or lose the acknowledgement; a timeout recovers from either loss.

The net built here (see ``DESIGN.md`` for the reconstruction notes on the two
OCR-ambiguous firing times) reproduces every number the paper reports:

* the timed reachability graph has 18 states (Figure 4),
* the decision graph has two decision nodes and four edges with delays
  1002 ms, 120.2 ms, 122.2 ms and 881.8 ms and probabilities 0.05/0.95
  (Figure 5),
* the symbolic analysis under the four timing constraints of Section 4
  yields the throughput expression that specializes to
  ``18.05 / (1.95·(E3+F3) + 20·F1 + 18.05·(F2+F4+F6+F7+F8))`` at 5 % loss,
  numerically ≈ 2.85 messages/second.

Two flavours are provided:

* :func:`simple_protocol_net` — the numeric net, with every timing and loss
  parameter overridable (used by sweeps and the simulator);
* :func:`simple_protocol_symbolic` — the symbolic net plus the declared
  timing constraints of Section 4 (used by the symbolic reachability and
  performance derivations).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

from ..petri.builder import NetBuilder
from ..petri.net import TimedPetriNet
from ..symbolic.constraints import Constraint, ConstraintSet
from ..symbolic.evaluate import Bindings
from ..symbolic.linexpr import ExprLike, LinExpr, as_expr, as_fraction
from ..symbolic.symbols import Symbol, firing_frequency_symbol, firing_time_symbol

#: Default parameter values of Figure 1b (milliseconds).
PAPER_SEND_TIME = Fraction(1)  # F(t1): sender transmits packet
PAPER_ACK_ACCEPT_TIME = Fraction(1)  # F(t2): sender accepts acknowledgement
PAPER_TIMEOUT = Fraction(1000)  # E(t3): retransmission timeout
PAPER_TIMEOUT_FIRING = Fraction(1)  # F(t3): timeout handling
PAPER_PACKET_DELAY = Fraction("106.7")  # F(t4)=F(t5): medium transit (packet)
PAPER_RECEIVER_TIME = Fraction("13.5")  # F(t6): receiver consumes packet, emits ack
PAPER_NEXT_MESSAGE_TIME = Fraction("13.5")  # F(t7): sender prepares next message
PAPER_ACK_DELAY = Fraction("106.7")  # F(t8)=F(t9): medium transit (ack)
PAPER_PACKET_LOSS = Fraction(1, 20)  # 5 % packet loss
PAPER_ACK_LOSS = Fraction(1, 20)  # 5 % acknowledgement loss

#: Headline results of the paper, used by benchmarks and EXPERIMENTS.md.
PAPER_STATE_COUNT = 18
PAPER_DECISION_NODE_COUNT = 2
PAPER_DECISION_EDGE_COUNT = 4
#: Figure 5 edge delays in milliseconds, keyed by a human-readable edge name.
PAPER_DECISION_DELAYS = {
    "packet_lost": Fraction(1002),
    "packet_delivered": Fraction("120.2"),
    "ack_delivered": Fraction("122.2"),
    "ack_lost": Fraction("881.8"),
}
#: Remaining-enabling-time milestones of Figure 4b.
PAPER_RET_MILESTONES = (Fraction(1000), Fraction("893.3"), Fraction("879.8"), Fraction("773.1"))
#: Throughput at the paper's parameters, in messages per millisecond.
PAPER_THROUGHPUT = Fraction("18.05") / (
    Fraction("1.95") * (PAPER_TIMEOUT + PAPER_TIMEOUT_FIRING)
    + 20 * PAPER_SEND_TIME
    + Fraction("18.05")
    * (
        PAPER_ACK_ACCEPT_TIME
        + PAPER_PACKET_DELAY
        + PAPER_RECEIVER_TIME
        + PAPER_NEXT_MESSAGE_TIME
        + PAPER_ACK_DELAY
    )
)

PLACE_DESCRIPTIONS = {
    "p1": "sender has a message ready to send",
    "p2": "sender waiting for acknowledgement (timeout armed)",
    "p3": "packet delivered to receiver",
    "p4": "packet in transit in the medium",
    "p5": "acknowledgement delivered to sender",
    "p6": "acknowledgement in transit in the medium",
    "p7": "acknowledgement accepted, next message being prepared",
    "p8": "receiver ready",
}

TRANSITION_DESCRIPTIONS = {
    "t1": "sender transmits packet",
    "t2": "sender accepts acknowledgement",
    "t3": "sender timeout, retransmit",
    "t4": "medium delivers packet",
    "t5": "medium loses packet",
    "t6": "receiver consumes packet and emits acknowledgement",
    "t7": "sender prepares the next message",
    "t8": "medium delivers acknowledgement",
    "t9": "medium loses acknowledgement",
}


@dataclass(frozen=True)
class SimpleProtocolParameters:
    """The tunable parameters of the simple protocol model.

    All times are in milliseconds; loss probabilities are in [0, 1].
    Defaults reproduce the paper's Figure 1b.
    """

    send_time: ExprLike = PAPER_SEND_TIME
    ack_accept_time: ExprLike = PAPER_ACK_ACCEPT_TIME
    timeout: ExprLike = PAPER_TIMEOUT
    timeout_firing_time: ExprLike = PAPER_TIMEOUT_FIRING
    packet_delay: ExprLike = PAPER_PACKET_DELAY
    packet_loss_delay: ExprLike | None = None  # defaults to packet_delay
    receiver_time: ExprLike = PAPER_RECEIVER_TIME
    next_message_time: ExprLike = PAPER_NEXT_MESSAGE_TIME
    ack_delay: ExprLike = PAPER_ACK_DELAY
    ack_loss_delay: ExprLike | None = None  # defaults to ack_delay
    packet_loss_probability: ExprLike = PAPER_PACKET_LOSS
    ack_loss_probability: ExprLike | None = None  # defaults to packet_loss_probability

    def resolved(self) -> "SimpleProtocolParameters":
        """Fill the ``None`` defaults (loss delays = delivery delays, ack loss = packet loss)."""
        return SimpleProtocolParameters(
            send_time=self.send_time,
            ack_accept_time=self.ack_accept_time,
            timeout=self.timeout,
            timeout_firing_time=self.timeout_firing_time,
            packet_delay=self.packet_delay,
            packet_loss_delay=self.packet_delay if self.packet_loss_delay is None else self.packet_loss_delay,
            receiver_time=self.receiver_time,
            next_message_time=self.next_message_time,
            ack_delay=self.ack_delay,
            ack_loss_delay=self.ack_delay if self.ack_loss_delay is None else self.ack_loss_delay,
            packet_loss_probability=self.packet_loss_probability,
            ack_loss_probability=(
                self.packet_loss_probability
                if self.ack_loss_probability is None
                else self.ack_loss_probability
            ),
        )


def _build_net(
    parameters: SimpleProtocolParameters,
    *,
    packet_delivery_frequency: ExprLike,
    packet_loss_frequency: ExprLike,
    ack_delivery_frequency: ExprLike,
    ack_loss_frequency: ExprLike,
    name: str,
) -> TimedPetriNet:
    p = parameters.resolved()
    builder = NetBuilder(name)
    for place, description in PLACE_DESCRIPTIONS.items():
        builder.place(place, description)
    builder.transition(
        "t1", inputs=["p1"], outputs=["p2", "p4"], firing_time=p.send_time,
        description=TRANSITION_DESCRIPTIONS["t1"],
    )
    builder.transition(
        "t2", inputs=["p2", "p5"], outputs=["p7"], firing_time=p.ack_accept_time, frequency=0,
        description=TRANSITION_DESCRIPTIONS["t2"],
    )
    builder.transition(
        "t3", inputs=["p2"], outputs=["p1"], enabling_time=p.timeout,
        firing_time=p.timeout_firing_time, frequency=1,
        description=TRANSITION_DESCRIPTIONS["t3"],
    )
    builder.transition(
        "t4", inputs=["p4"], outputs=["p3"], firing_time=p.packet_delay,
        frequency=packet_delivery_frequency, description=TRANSITION_DESCRIPTIONS["t4"],
    )
    builder.transition(
        "t5", inputs=["p4"], outputs=[], firing_time=p.packet_loss_delay,
        frequency=packet_loss_frequency, description=TRANSITION_DESCRIPTIONS["t5"],
    )
    builder.transition(
        "t6", inputs=["p3", "p8"], outputs=["p6", "p8"], firing_time=p.receiver_time,
        description=TRANSITION_DESCRIPTIONS["t6"],
    )
    builder.transition(
        "t7", inputs=["p7"], outputs=["p1"], firing_time=p.next_message_time,
        description=TRANSITION_DESCRIPTIONS["t7"],
    )
    builder.transition(
        "t8", inputs=["p6"], outputs=["p5"], firing_time=p.ack_delay,
        frequency=ack_delivery_frequency, description=TRANSITION_DESCRIPTIONS["t8"],
    )
    builder.transition(
        "t9", inputs=["p6"], outputs=[], firing_time=p.ack_loss_delay,
        frequency=ack_loss_frequency, description=TRANSITION_DESCRIPTIONS["t9"],
    )
    builder.mark("p1")
    builder.mark("p8")
    return builder.build()


def simple_protocol_net(
    parameters: SimpleProtocolParameters | None = None,
    **overrides,
) -> TimedPetriNet:
    """Build the numeric Figure-1 net.

    Either pass a full :class:`SimpleProtocolParameters` or override
    individual fields by keyword, e.g.
    ``simple_protocol_net(packet_loss_probability=0.1, timeout=500)``.
    """
    if parameters is None:
        parameters = SimpleProtocolParameters(**overrides)
    elif overrides:
        raise TypeError("pass either a SimpleProtocolParameters object or keyword overrides, not both")
    resolved = parameters.resolved()
    packet_loss = as_fraction(resolved.packet_loss_probability)
    ack_loss = as_fraction(resolved.ack_loss_probability)
    for value, label in ((packet_loss, "packet"), (ack_loss, "acknowledgement")):
        if not 0 <= value <= 1:
            raise ValueError(f"{label} loss probability must lie in [0, 1], got {value}")
    return _build_net(
        resolved,
        packet_delivery_frequency=1 - packet_loss,
        packet_loss_frequency=packet_loss,
        ack_delivery_frequency=1 - ack_loss,
        ack_loss_frequency=ack_loss,
        name="simple-protocol",
    )


# ---------------------------------------------------------------------------
# Symbolic flavour (Section 4)
# ---------------------------------------------------------------------------


def protocol_symbols() -> Dict[str, Symbol]:
    """The conventional symbols of the symbolic model.

    ``E3`` is the timeout enabling time; ``F1`` … ``F9`` are the firing
    times; ``f4, f5, f8, f9`` are the firing frequencies of the conflicting
    medium transitions.
    """
    symbols: Dict[str, Symbol] = {"E3": Symbol("E_t3", "time")}
    for index in range(1, 10):
        symbols[f"F{index}"] = firing_time_symbol(f"t{index}")
    for index in (4, 5, 8, 9):
        symbols[f"f{index}"] = firing_frequency_symbol(f"t{index}")
    return symbols


def section4_constraints(symbols: Dict[str, Symbol] | None = None) -> ConstraintSet:
    """The four timing constraints of Section 4 of the paper.

    1. ``E(t3) > F(t1) + F(t4) + F(t6) + F(t8) + F(t2)`` — the timeout exceeds
       the round-trip time of a packet and its acknowledgement.
    2. ``E(t_i) = 0`` for ``i ≠ 3`` — only the timeout has an enabling delay
       (represented structurally: the symbolic net simply gives those
       transitions enabling time 0, so no explicit constraint is needed; the
       constraint set records it for documentation with label "2").
    3. ``F(t5) = F(t4)`` — losing a packet takes no longer than delivering it.
    4. ``F(t9) = F(t8)`` — losing an acknowledgement takes no longer than
       delivering it.
    """
    s = symbols or protocol_symbols()
    round_trip = (
        as_expr(s["F1"]) + s["F4"] + s["F6"] + s["F8"] + s["F2"]
    )
    constraint_set = ConstraintSet()
    constraint_set.add(Constraint.greater(LinExpr.from_symbol(s["E3"]), round_trip, label="1"))
    # Constraint 2 is structural (enabling times of t1..t9 except t3 are the
    # constant 0 in the symbolic net); we record a trivially-true placeholder
    # so reports list the same four constraints as the paper.
    constraint_set.add(Constraint.equal(LinExpr.zero(), LinExpr.zero(), label="2"))
    constraint_set.add(Constraint.equal(LinExpr.from_symbol(s["F5"]), LinExpr.from_symbol(s["F4"]), label="3"))
    constraint_set.add(Constraint.equal(LinExpr.from_symbol(s["F9"]), LinExpr.from_symbol(s["F8"]), label="4"))
    return constraint_set


def simple_protocol_symbolic(
    *, apply_equal_loss_delays: bool = True
) -> Tuple[TimedPetriNet, ConstraintSet, Dict[str, Symbol]]:
    """Build the symbolic Figure-1 net with the Section-4 timing constraints.

    Returns ``(net, constraints, symbols)``.  With
    ``apply_equal_loss_delays=True`` (default) the firing times of the loss
    transitions t5/t9 are *written as* ``F4``/``F8`` — using constraints 3
    and 4 at modelling time exactly as the paper's Figure 6b does (its loss
    states show the delivery-time symbols).  Set it to False to keep separate
    ``F5``/``F9`` symbols and let the comparator use constraints 3 and 4
    during the construction instead.
    """
    symbols = protocol_symbols()
    constraints = section4_constraints(symbols)
    loss_packet_delay = symbols["F4"] if apply_equal_loss_delays else symbols["F5"]
    loss_ack_delay = symbols["F8"] if apply_equal_loss_delays else symbols["F9"]
    parameters = SimpleProtocolParameters(
        send_time=symbols["F1"],
        ack_accept_time=symbols["F2"],
        timeout=symbols["E3"],
        timeout_firing_time=symbols["F3"],
        packet_delay=symbols["F4"],
        packet_loss_delay=loss_packet_delay,
        receiver_time=symbols["F6"],
        next_message_time=symbols["F7"],
        ack_delay=symbols["F8"],
        ack_loss_delay=loss_ack_delay,
    )
    net = _build_net(
        parameters,
        packet_delivery_frequency=symbols["f4"],
        packet_loss_frequency=symbols["f5"],
        ack_delivery_frequency=symbols["f8"],
        ack_loss_frequency=symbols["f9"],
        name="simple-protocol-symbolic",
    )
    return net, constraints, symbols


def paper_bindings(
    *,
    packet_loss: ExprLike = PAPER_PACKET_LOSS,
    ack_loss: ExprLike | None = None,
) -> Bindings:
    """Numeric bindings for the symbolic model matching Figure 1b.

    Used to specialize symbolic results back to the paper's numbers and to
    cross-check the symbolic construction against the numeric one.
    """
    symbols = protocol_symbols()
    packet_loss_fraction = as_fraction(packet_loss)
    ack_loss_fraction = packet_loss_fraction if ack_loss is None else as_fraction(ack_loss)
    bindings = Bindings()
    bindings.set(symbols["E3"], PAPER_TIMEOUT)
    bindings.set(symbols["F1"], PAPER_SEND_TIME)
    bindings.set(symbols["F2"], PAPER_ACK_ACCEPT_TIME)
    bindings.set(symbols["F3"], PAPER_TIMEOUT_FIRING)
    bindings.set(symbols["F4"], PAPER_PACKET_DELAY)
    bindings.set(symbols["F5"], PAPER_PACKET_DELAY)
    bindings.set(symbols["F6"], PAPER_RECEIVER_TIME)
    bindings.set(symbols["F7"], PAPER_NEXT_MESSAGE_TIME)
    bindings.set(symbols["F8"], PAPER_ACK_DELAY)
    bindings.set(symbols["F9"], PAPER_ACK_DELAY)
    bindings.set(symbols["f4"], 1 - packet_loss_fraction)
    bindings.set(symbols["f5"], packet_loss_fraction)
    bindings.set(symbols["f8"], 1 - ack_loss_fraction)
    bindings.set(symbols["f9"], ack_loss_fraction)
    return bindings


def paper_throughput_expression_value(
    *, packet_loss: ExprLike = PAPER_PACKET_LOSS, ack_loss: ExprLike | None = None
) -> Fraction:
    """Evaluate the closed-form throughput the paper states, for arbitrary loss rates.

    The general closed form (derived in Section 4 and reproduced by
    :mod:`repro.performance`) is::

        throughput = A·P / [ (1-P)·d_lost + P·d_ok + P·A·d_acked + P·(1-A)·d_ack_lost ]

    with ``P`` the packet delivery probability, ``A`` the acknowledgement
    delivery probability and the four decision-graph delays of Figure 5.  At
    ``P = A = 0.95`` this is exactly the paper's
    ``18.05 / (1.95(E3+F3) + 20 F1 + 18.05(F2+F4+F6+F7+F8))``.
    """
    packet_loss_fraction = as_fraction(packet_loss)
    ack_loss_fraction = packet_loss_fraction if ack_loss is None else as_fraction(ack_loss)
    delivery = 1 - packet_loss_fraction
    acked = 1 - ack_loss_fraction
    delay_lost = PAPER_TIMEOUT + PAPER_TIMEOUT_FIRING + PAPER_SEND_TIME
    delay_ok = PAPER_PACKET_DELAY + PAPER_RECEIVER_TIME
    delay_acked = PAPER_ACK_DELAY + PAPER_ACK_ACCEPT_TIME + PAPER_NEXT_MESSAGE_TIME + PAPER_SEND_TIME
    delay_ack_lost = (
        PAPER_TIMEOUT - PAPER_PACKET_DELAY - PAPER_RECEIVER_TIME
        + PAPER_TIMEOUT_FIRING + PAPER_SEND_TIME
    )
    denominator = (
        (1 - delivery) * delay_lost
        + delivery * delay_ok
        + delivery * acked * delay_acked
        + delivery * (1 - acked) * delay_ack_lost
    )
    return delivery * acked / denominator
