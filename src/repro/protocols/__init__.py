"""Protocol and workload model zoo.

* :mod:`repro.protocols.simple_protocol` — the paper's Figure-1 protocol
  (numeric and symbolic flavours, Section-4 constraints, paper constants),
* :mod:`repro.protocols.alternating_bit` — the sequenced extension the paper
  mentions,
* :mod:`repro.protocols.workloads` — producer/consumer, token ring,
  pipelined stop-and-wait, sliding-window, go-back-N and selective-repeat
  models used for scaling experiments and for stressing the compiled
  reachability engine.
"""

from typing import Callable, Dict

from ..petri.net import TimedPetriNet
from .alternating_bit import alternating_bit_net, message_accept_transitions
from .simple_protocol import (
    PAPER_ACK_DELAY,
    PAPER_ACK_LOSS,
    PAPER_DECISION_DELAYS,
    PAPER_DECISION_EDGE_COUNT,
    PAPER_DECISION_NODE_COUNT,
    PAPER_PACKET_DELAY,
    PAPER_PACKET_LOSS,
    PAPER_RECEIVER_TIME,
    PAPER_RET_MILESTONES,
    PAPER_SEND_TIME,
    PAPER_STATE_COUNT,
    PAPER_THROUGHPUT,
    PAPER_TIMEOUT,
    SimpleProtocolParameters,
    paper_bindings,
    paper_throughput_expression_value,
    protocol_symbols,
    section4_constraints,
    simple_protocol_net,
    simple_protocol_symbolic,
)
from .workloads import (
    go_back_n_net,
    pipelined_stop_and_wait_net,
    producer_consumer_net,
    selective_repeat_net,
    sliding_window_net,
    sliding_window_symbolic,
    token_ring_net,
)


def model_catalog() -> Dict[str, Callable[[], TimedPetriNet]]:
    """Named zero-argument constructors for every bundled numeric model.

    Used by the CLI (``repro-tpn analyze --model <name>``) and by sweep-style
    tests that want to exercise every model uniformly.
    """
    return {
        "simple-protocol": simple_protocol_net,
        "alternating-bit": alternating_bit_net,
        "producer-consumer": producer_consumer_net,
        "token-ring": token_ring_net,
        "pipelined-stop-and-wait": pipelined_stop_and_wait_net,
        "sliding-window": sliding_window_net,
        "go-back-n": go_back_n_net,
        "selective-repeat": selective_repeat_net,
    }


__all__ = [
    "PAPER_ACK_DELAY",
    "PAPER_ACK_LOSS",
    "PAPER_DECISION_DELAYS",
    "PAPER_DECISION_EDGE_COUNT",
    "PAPER_DECISION_NODE_COUNT",
    "PAPER_PACKET_DELAY",
    "PAPER_PACKET_LOSS",
    "PAPER_RECEIVER_TIME",
    "PAPER_RET_MILESTONES",
    "PAPER_SEND_TIME",
    "PAPER_STATE_COUNT",
    "PAPER_THROUGHPUT",
    "PAPER_TIMEOUT",
    "SimpleProtocolParameters",
    "alternating_bit_net",
    "go_back_n_net",
    "message_accept_transitions",
    "model_catalog",
    "selective_repeat_net",
    "sliding_window_net",
    "sliding_window_symbolic",
    "paper_bindings",
    "paper_throughput_expression_value",
    "pipelined_stop_and_wait_net",
    "producer_consumer_net",
    "protocol_symbols",
    "section4_constraints",
    "simple_protocol_net",
    "simple_protocol_symbolic",
    "token_ring_net",
]
