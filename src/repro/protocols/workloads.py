"""Additional workload models: producer/consumer, token ring, windowed protocols.

These models exercise the library beyond the paper's running example:

* :func:`producer_consumer_net` — a bounded-buffer producer/consumer with a
  lossy hand-off, the canonical "throughput limited by the slower stage"
  workload; its analytic cycle time has a simple closed form the tests check.
* :func:`token_ring_net` — an ``n``-station token-passing ring; the timed
  reachability graph grows linearly with ``n`` which makes it the scaling
  workload of experiment E13.
* :func:`pipelined_stop_and_wait_net` — two independent stop-and-wait
  channels sharing one receiver, a small step toward the sliding-window
  protocols the paper's introduction motivates; used to show how interleaved
  timers blow up the state space.
* :func:`sliding_window_net` — a ``window_size``-frame sliding-window sender
  over per-slot lossy media with a shared receiver; the number of concurrent
  timers (and thus the state space) grows with the window, which is the
  stress workload of the compiled reachability engine.
* :func:`go_back_n_net` — a go-back-N-style variant of the sliding window:
  frames are sent strictly in sequence order and the receiver only accepts
  the next expected frame, so out-of-order deliveries queue at the receiver.
* :func:`selective_repeat_net` — the full selective-repeat window variant:
  frames are first sent in sequence order, only lost frames are
  retransmitted (per-slot timeout), and the receiver acknowledges frames
  *out of order* into per-slot reassembly buffer cells while an in-order
  release stage hands them to the application.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple

from ..petri.builder import NetBuilder
from ..petri.net import TimedPetriNet
from ..symbolic.constraints import Constraint, ConstraintSet
from ..symbolic.linexpr import ExprLike, LinExpr, as_expr, as_fraction
from ..symbolic.symbols import Symbol, time_symbol


def producer_consumer_net(
    *,
    buffer_size: int = 3,
    production_time: ExprLike = 5,
    transfer_time: ExprLike = 2,
    consumption_time: ExprLike = 8,
    loss_probability: ExprLike = 0,
) -> TimedPetriNet:
    """A producer filling a bounded buffer drained by a consumer.

    With ``loss_probability`` > 0 the hand-off into the buffer can fail, in
    which case the item is dropped (modelling an overflowing NIC queue or a
    lossy link between the two stages).
    """
    if buffer_size < 1:
        raise ValueError("buffer_size must be at least 1")
    loss = as_fraction(loss_probability)
    if not 0 <= loss <= 1:
        raise ValueError("loss probability must lie in [0, 1]")

    builder = NetBuilder("producer-consumer")
    builder.place("producer_idle", "producer ready to produce", tokens=1)
    builder.place("item_ready", "item produced, awaiting hand-off")
    builder.place("buffer_slots", "free buffer slots", tokens=buffer_size)
    builder.place("buffer_items", "items waiting in the buffer")
    builder.place("consumer_idle", "consumer ready to consume", tokens=1)
    builder.place("consuming", "consumer processing an item")

    builder.transition(
        "produce",
        inputs=["producer_idle"],
        outputs=["item_ready"],
        firing_time=production_time,
        description="producer creates an item",
    )
    builder.transition(
        "enqueue",
        inputs=["item_ready", "buffer_slots"],
        outputs=["buffer_items", "producer_idle"],
        firing_time=transfer_time,
        frequency=1 - loss,
        description="hand the item into the buffer",
    )
    if loss > 0:
        builder.transition(
            "drop",
            inputs=["item_ready", "buffer_slots"],
            outputs=["buffer_slots", "producer_idle"],
            firing_time=transfer_time,
            frequency=loss,
            description="the hand-off fails and the item is dropped",
        )
    builder.transition(
        "start_consume",
        inputs=["buffer_items", "consumer_idle"],
        outputs=["consuming"],
        firing_time=0,
        description="consumer picks an item from the buffer",
    )
    builder.transition(
        "finish_consume",
        inputs=["consuming"],
        outputs=["consumer_idle", "buffer_slots"],
        firing_time=consumption_time,
        description="consumer finishes processing and frees the slot",
    )
    return builder.build()


def token_ring_net(
    stations: int = 3,
    *,
    hold_time: ExprLike = 10,
    pass_time: ExprLike = 2,
) -> TimedPetriNet:
    """A token-passing ring of ``stations`` stations.

    Each station holds the token for ``hold_time`` (transmitting), then
    passes it to the next station in ``pass_time``.  The steady-state cycle
    time is exactly ``stations * (hold_time + pass_time)``, which the tests
    verify against the analytic pipeline; the model's main role is scaling
    the reachability graph linearly for experiment E13.
    """
    if stations < 2:
        raise ValueError("a token ring needs at least 2 stations")
    builder = NetBuilder(f"token-ring-{stations}")
    for index in range(stations):
        builder.place(f"has_token_{index}", f"station {index} holds the token", tokens=1 if index == 0 else 0)
        builder.place(f"passing_{index}", f"token travelling from station {index}")
    for index in range(stations):
        nxt = (index + 1) % stations
        builder.transition(
            f"transmit_{index}",
            inputs=[f"has_token_{index}"],
            outputs=[f"passing_{index}"],
            firing_time=hold_time,
            description=f"station {index} transmits while holding the token",
        )
        builder.transition(
            f"pass_{index}",
            inputs=[f"passing_{index}"],
            outputs=[f"has_token_{nxt}"],
            firing_time=pass_time,
            description=f"token passes from station {index} to station {nxt}",
        )
    return builder.build()


def pipelined_stop_and_wait_net(
    channels: int = 2,
    *,
    send_time: ExprLike = 1,
    packet_delay: ExprLike = 4,
    receiver_time: ExprLike = 1,
    ack_delay: ExprLike = 4,
    loss_probability: ExprLike = Fraction(1, 10),
    timeout: ExprLike = 20,
) -> TimedPetriNet:
    """Several independent stop-and-wait channels sharing one receiver.

    Each channel behaves like the paper's protocol (without the ack-loss
    branch, to keep the per-channel state small); the shared receiver place
    serializes acknowledgement generation, so the channels interfere — the
    timed reachability graph grows combinatorially with ``channels``, which
    is exactly what experiment E13 uses it for.

    The default delays are small *commensurable* integers rather than the
    paper's millisecond values: with several free-running timers the timed
    reachability graph is only finite when the relative phases of the
    channels can take finitely many values, which integer delays guarantee.
    (With the paper's 106.7/13.5/1000 values and loss, the phase drift never
    repeats and the graph genuinely does not close — a nice illustration of
    the limits of the method that the scaling benchmark points out.)
    """
    if channels < 1:
        raise ValueError("at least one channel is required")
    loss = as_fraction(loss_probability)
    builder = NetBuilder(f"pipelined-stop-and-wait-{channels}")
    builder.place("receiver_ready", "shared receiver ready", tokens=1)
    for channel in range(channels):
        prefix = f"c{channel}_"
        builder.place(prefix + "ready", f"channel {channel}: message ready", tokens=1)
        builder.place(prefix + "waiting", f"channel {channel}: awaiting acknowledgement")
        builder.place(prefix + "in_medium", f"channel {channel}: packet in the medium")
        builder.place(prefix + "at_receiver", f"channel {channel}: packet delivered")
        builder.place(prefix + "ack_in_medium", f"channel {channel}: acknowledgement in transit")
        builder.transition(
            prefix + "send",
            inputs=[prefix + "ready"],
            outputs=[prefix + "waiting", prefix + "in_medium"],
            firing_time=send_time,
            description=f"channel {channel}: transmit packet",
        )
        builder.transition(
            prefix + "deliver",
            inputs=[prefix + "in_medium"],
            outputs=[prefix + "at_receiver"],
            firing_time=packet_delay,
            frequency=1 - loss,
            description=f"channel {channel}: medium delivers the packet",
        )
        builder.transition(
            prefix + "lose",
            inputs=[prefix + "in_medium"],
            outputs=[],
            firing_time=packet_delay,
            frequency=loss,
            description=f"channel {channel}: medium loses the packet",
        )
        builder.transition(
            prefix + "ack",
            inputs=[prefix + "at_receiver", "receiver_ready"],
            outputs=[prefix + "ack_in_medium", "receiver_ready"],
            firing_time=receiver_time,
            description=f"channel {channel}: receiver acknowledges",
        )
        builder.transition(
            prefix + "got_ack",
            inputs=[prefix + "waiting", prefix + "ack_in_medium"],
            outputs=[prefix + "ready"],
            firing_time=ack_delay,
            frequency=0,
            description=f"channel {channel}: acknowledgement returns, next message",
        )
        builder.transition(
            prefix + "timeout",
            inputs=[prefix + "waiting"],
            outputs=[prefix + "ready"],
            enabling_time=timeout,
            firing_time=1,
            frequency=1,
            description=f"channel {channel}: retransmission timeout",
        )
    return builder.build()


def _check_window_parameters(window_size: int, loss_probability: ExprLike):
    """Shared validation of the windowed-protocol builders."""
    if window_size < 1:
        raise ValueError("window_size must be at least 1")
    loss = as_fraction(loss_probability)
    if not 0 <= loss <= 1:
        raise ValueError("loss probability must lie in [0, 1]")
    return loss


def _declare_slot_places(builder: NetBuilder, prefix: str, slot: int) -> None:
    """The per-slot places shared by the windowed protocols."""
    builder.place(prefix + "slot_free", f"window slot {slot} available", tokens=1)
    builder.place(prefix + "in_medium", f"slot {slot}: frame in the medium")
    builder.place(prefix + "at_receiver", f"slot {slot}: frame delivered")
    builder.place(prefix + "ack_in_medium", f"slot {slot}: acknowledgement in transit")


def _add_slot_medium(
    builder: NetBuilder,
    prefix: str,
    slot: int,
    *,
    packet_delay: ExprLike,
    send_time: ExprLike,
    loss,
    timeout: ExprLike,
) -> None:
    """The per-slot medium: delivery, and with loss a timeout/retransmit path."""
    builder.transition(
        prefix + "deliver",
        inputs=[prefix + "in_medium"],
        outputs=[prefix + "at_receiver"],
        firing_time=packet_delay,
        frequency=1 - loss,
        description=f"slot {slot}: medium delivers the frame",
    )
    if loss > 0:
        builder.place(prefix + "lost", f"slot {slot}: frame lost, timer running")
        builder.transition(
            prefix + "lose",
            inputs=[prefix + "in_medium"],
            outputs=[prefix + "lost"],
            firing_time=packet_delay,
            frequency=loss,
            description=f"slot {slot}: medium loses the frame",
        )
        builder.transition(
            prefix + "resend",
            inputs=[prefix + "lost"],
            outputs=[prefix + "in_medium"],
            enabling_time=timeout,
            firing_time=send_time,
            description=f"slot {slot}: retransmission timeout fires",
        )


def _add_slot_ack_return(builder: NetBuilder, prefix: str, slot: int, *, ack_delay: ExprLike) -> None:
    """The per-slot returning acknowledgement that frees the window slot."""
    builder.transition(
        prefix + "ack_return",
        inputs=[prefix + "ack_in_medium"],
        outputs=[prefix + "slot_free"],
        firing_time=ack_delay,
        description=f"slot {slot}: acknowledgement frees the slot",
    )


def sliding_window_net(
    window_size: int = 2,
    *,
    send_time: ExprLike = 1,
    packet_delay: ExprLike = 4,
    receiver_time: ExprLike = 1,
    ack_delay: ExprLike = 4,
    loss_probability: ExprLike = 0,
    timeout: ExprLike = 12,
) -> TimedPetriNet:
    """A sliding-window sender with ``window_size`` frames in flight.

    One sender serializes transmissions (every ``send_`` transition holds the
    shared ``sender_ready`` token for ``send_time``), but up to
    ``window_size`` frames travel concurrently, each through its own slot of
    the medium; a shared receiver acknowledges them one at a time and the
    returning acknowledgement frees the slot.  With ``loss_probability > 0``
    a frame can be lost in the medium, in which case a per-slot timeout
    retransmits it.

    All ``send_<i>`` transitions share ``sender_ready`` and therefore form a
    single conflict set: whenever several slots are free the sender picks one
    uniformly, which makes the model rich in decision states.  The number of
    concurrently running timers grows with the window, so the timed
    reachability graph grows steeply with ``window_size`` — this is the
    stress workload for the compiled reachability engine.  Delays default to
    small commensurable integers so the graph stays finite (see
    :func:`pipelined_stop_and_wait_net` for why that matters).
    """
    loss = _check_window_parameters(window_size, loss_probability)

    builder = NetBuilder(f"sliding-window-{window_size}")
    builder.place("sender_ready", "sender free to transmit the next frame", tokens=1)
    builder.place("receiver_ready", "shared receiver ready", tokens=1)
    for slot in range(window_size):
        prefix = f"w{slot}_"
        _declare_slot_places(builder, prefix, slot)
        builder.transition(
            prefix + "send",
            inputs=["sender_ready", prefix + "slot_free"],
            outputs=["sender_ready", prefix + "in_medium"],
            firing_time=send_time,
            description=f"slot {slot}: transmit a frame",
        )
        _add_slot_medium(
            builder, prefix, slot,
            packet_delay=packet_delay, send_time=send_time, loss=loss, timeout=timeout,
        )
        builder.transition(
            prefix + "ack",
            inputs=[prefix + "at_receiver", "receiver_ready"],
            outputs=[prefix + "ack_in_medium", "receiver_ready"],
            firing_time=receiver_time,
            description=f"slot {slot}: receiver acknowledges the frame",
        )
        _add_slot_ack_return(builder, prefix, slot, ack_delay=ack_delay)
    return builder.build()


def sliding_window_symbolic(
    window_size: int = 2,
    *,
    send_time: ExprLike = 1,
    receiver_time: ExprLike = 1,
) -> Tuple[TimedPetriNet, ConstraintSet, Dict[str, Symbol]]:
    """The lossless sliding window with *symbolic* medium delays.

    Returns ``(net, constraints, symbols)`` in the style of
    :func:`~repro.protocols.simple_protocol.simple_protocol_symbolic`: the
    packet delay is the time symbol ``d`` and the acknowledgement delay the
    time symbol ``a``, declared larger than the (numeric) send and receiver
    stages combined so the symbolic comparator can order every pair of
    concurrent clocks the window produces.

    This is the showcase model for the generalized (cycle-folding) decision
    collapse: the strict paper-shaped collapse rejects the lossless window,
    while cycle-time analysis of its committed cycles yields the closed
    forms ``cycle time = send + d + receive + a`` and per-slot throughput
    ``1 / (send + d + receive + a)`` — valid for *all* delays satisfying the
    declared constraints, which is the paper's symbolic selling point
    carried over to cyclic protocols.
    """
    symbols = {"d": time_symbol("d"), "a": time_symbol("a")}
    net = sliding_window_net(
        window_size,
        send_time=send_time,
        packet_delay=symbols["d"],
        receiver_time=receiver_time,
        ack_delay=symbols["a"],
    )
    stage_total = as_expr(send_time) + as_expr(receiver_time)
    constraints = ConstraintSet()
    constraints.add(
        Constraint.greater(LinExpr.from_symbol(symbols["d"]), stage_total, label="d>stages")
    )
    constraints.add(
        Constraint.greater(LinExpr.from_symbol(symbols["a"]), stage_total, label="a>stages")
    )
    return net, constraints, symbols


def selective_repeat_net(
    window_size: int = 2,
    *,
    send_time: ExprLike = 1,
    packet_delay: ExprLike = 4,
    receiver_time: ExprLike = 1,
    ack_delay: ExprLike = 4,
    release_time: ExprLike = 1,
    loss_probability: ExprLike = 0,
    timeout: ExprLike = 12,
) -> TimedPetriNet:
    """A selective-repeat windowed sender with an out-of-order-buffering receiver.

    The third window discipline of the zoo, completing the
    :func:`sliding_window_net` / :func:`go_back_n_net` family:

    * the sender transmits *new* frames strictly in sequence order (an
      ``sr<i>_send_turn`` token cycles through the slots, as in go-back-N),
      but a lost frame is retransmitted **selectively** by its own per-slot
      timeout while later slots keep making progress,
    * the receiver accepts and acknowledges frames **out of order**: an
      arriving frame is acknowledged immediately (the returning
      acknowledgement frees the window slot) and parked in its slot's
      single-cell reassembly buffer (``sr<i>_buffer_free`` guards the cell,
      so a slot cannot be re-filled at the receiver before its previous
      frame was released),
    * an in-order release stage hands buffered frames to the application:
      an ``sr<i>_expect`` token cycles through the slots, so a frame that
      arrived early waits in its buffer cell until its turn — the
      resequencing delay that distinguishes selective repeat from go-back-N
      without its head-of-line retransmissions.

    Every slot's token population is conserved (one window token, one buffer
    cell, the cycling turn/expect tokens), so the net stays bounded under the
    untimed rule too — unlike the timeout-racing protocol nets.  Delays
    default to small commensurable integers so the timed graph closes (see
    :func:`pipelined_stop_and_wait_net` for why that matters).
    """
    loss = _check_window_parameters(window_size, loss_probability)

    builder = NetBuilder(f"selective-repeat-{window_size}")
    builder.place("receiver_ready", "shared receiver ready", tokens=1)
    for slot in range(window_size):
        builder.place(
            f"sr{slot}_send_turn",
            f"sender's next new frame is slot {slot}",
            tokens=1 if slot == 0 else 0,
        )
        builder.place(
            f"sr{slot}_expect",
            f"application expects the frame of slot {slot}",
            tokens=1 if slot == 0 else 0,
        )
    for slot in range(window_size):
        prefix = f"sr{slot}_"
        nxt = f"sr{(slot + 1) % window_size}_"
        _declare_slot_places(builder, prefix, slot)
        builder.place(prefix + "buffer_free", f"slot {slot}: reassembly buffer cell empty", tokens=1)
        builder.place(prefix + "buffered", f"slot {slot}: frame parked awaiting in-order release")
        builder.transition(
            prefix + "send",
            inputs=[prefix + "send_turn", prefix + "slot_free"],
            outputs=[nxt + "send_turn", prefix + "in_medium"],
            firing_time=send_time,
            description=f"slot {slot}: transmit the next in-sequence frame",
        )
        _add_slot_medium(
            builder, prefix, slot,
            packet_delay=packet_delay, send_time=send_time, loss=loss, timeout=timeout,
        )
        builder.transition(
            prefix + "accept",
            inputs=[prefix + "at_receiver", prefix + "buffer_free", "receiver_ready"],
            outputs=[prefix + "ack_in_medium", prefix + "buffered", "receiver_ready"],
            firing_time=receiver_time,
            description=f"slot {slot}: receiver buffers the frame and acknowledges it",
        )
        builder.transition(
            prefix + "release",
            inputs=[prefix + "buffered", prefix + "expect"],
            outputs=[prefix + "buffer_free", nxt + "expect"],
            firing_time=release_time,
            description=f"slot {slot}: release the in-order frame to the application",
        )
        _add_slot_ack_return(builder, prefix, slot, ack_delay=ack_delay)
    return builder.build()


def go_back_n_net(
    window_size: int = 2,
    *,
    send_time: ExprLike = 1,
    packet_delay: ExprLike = 4,
    receiver_time: ExprLike = 1,
    ack_delay: ExprLike = 4,
    loss_probability: ExprLike = 0,
    timeout: ExprLike = 12,
) -> TimedPetriNet:
    """A go-back-N-style windowed sender with an in-order receiver.

    Structurally a :func:`sliding_window_net`, with the two ordering
    disciplines that characterize go-back-N:

    * the sender transmits frames strictly in sequence order — a
      ``send_turn`` token cycles through the slots, so slot ``i+1`` cannot be
      (re)filled before slot ``i`` was sent, and
    * the receiver only accepts the next expected frame — an ``expect`` token
      cycles through the slots, so a frame that arrives out of order waits at
      the receiver until its turn.

    With ``loss_probability > 0`` a lost frame is retransmitted by a per-slot
    timeout while later frames queue at the in-order receiver, reproducing
    the head-of-line blocking that limits go-back-N throughput.  Like the
    other scaling workloads it defaults to small commensurable integer delays
    so the timed reachability graph closes.
    """
    loss = _check_window_parameters(window_size, loss_probability)

    builder = NetBuilder(f"go-back-n-{window_size}")
    builder.place("receiver_ready", "shared receiver ready", tokens=1)
    for slot in range(window_size):
        builder.place(
            f"g{slot}_send_turn",
            f"sender's next frame is slot {slot}",
            tokens=1 if slot == 0 else 0,
        )
        builder.place(
            f"g{slot}_expect",
            f"receiver expects the frame of slot {slot}",
            tokens=1 if slot == 0 else 0,
        )
    for slot in range(window_size):
        prefix = f"g{slot}_"
        nxt = f"g{(slot + 1) % window_size}_"
        _declare_slot_places(builder, prefix, slot)
        builder.transition(
            prefix + "send",
            inputs=[prefix + "send_turn", prefix + "slot_free"],
            outputs=[nxt + "send_turn", prefix + "in_medium"],
            firing_time=send_time,
            description=f"slot {slot}: transmit the next in-sequence frame",
        )
        _add_slot_medium(
            builder, prefix, slot,
            packet_delay=packet_delay, send_time=send_time, loss=loss, timeout=timeout,
        )
        builder.transition(
            prefix + "accept",
            inputs=[prefix + "at_receiver", prefix + "expect", "receiver_ready"],
            outputs=[prefix + "ack_in_medium", nxt + "expect", "receiver_ready"],
            firing_time=receiver_time,
            description=f"slot {slot}: receiver accepts the in-order frame",
        )
        _add_slot_ack_return(builder, prefix, slot, ack_delay=ack_delay)
    return builder.build()
