"""The alternating-bit protocol: the "more robust" extension the paper mentions.

The paper's running example deliberately omits sequence numbers ("this is a
trivial protocol, which can easily be extended to be more robust by using
alternating bits for message and acknowledgement sequencing").  This module
builds that extension: messages and acknowledgements carry a one-bit sequence
number, the receiver accepts a message only when the bit matches what it
expects (re-acknowledging duplicates otherwise), and the sender ignores stale
acknowledgements.

The model doubles the sender/receiver state of the simple protocol and is the
library's mid-size workload: its timed reachability graph is roughly twice
the size of Figure 4, and under the same timing constraints its throughput is
the same as the simple protocol's (the alternating bit buys correctness under
reordering/duplication, not speed), which the example script demonstrates.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict

from ..petri.builder import NetBuilder
from ..petri.net import TimedPetriNet
from ..symbolic.linexpr import ExprLike, as_fraction
from .simple_protocol import (
    PAPER_ACK_DELAY,
    PAPER_PACKET_DELAY,
    PAPER_PACKET_LOSS,
    PAPER_RECEIVER_TIME,
    PAPER_SEND_TIME,
    PAPER_TIMEOUT,
    PAPER_TIMEOUT_FIRING,
)


def alternating_bit_net(
    *,
    loss_probability: ExprLike = PAPER_PACKET_LOSS,
    ack_loss_probability: ExprLike | None = None,
    timeout: ExprLike = PAPER_TIMEOUT,
    send_time: ExprLike = PAPER_SEND_TIME,
    packet_delay: ExprLike = PAPER_PACKET_DELAY,
    ack_delay: ExprLike = PAPER_ACK_DELAY,
    receiver_time: ExprLike = PAPER_RECEIVER_TIME,
    ack_accept_time: ExprLike = Fraction(1),
    timeout_firing_time: ExprLike = PAPER_TIMEOUT_FIRING,
) -> TimedPetriNet:
    """Build the alternating-bit protocol as a Timed Petri Net.

    Timing defaults match the paper's Figure 1b so results are directly
    comparable with the simple protocol.
    """
    loss = as_fraction(loss_probability)
    ack_loss = loss if ack_loss_probability is None else as_fraction(ack_loss_probability)
    for value, label in ((loss, "packet"), (ack_loss, "acknowledgement")):
        if not 0 <= value <= 1:
            raise ValueError(f"{label} loss probability must lie in [0, 1], got {value}")

    builder = NetBuilder("alternating-bit")
    # Sender places.
    builder.place("s_ready0", "sender ready to send the bit-0 message", tokens=1)
    builder.place("s_wait0", "sender waiting for the bit-0 acknowledgement")
    builder.place("s_ready1", "sender ready to send the bit-1 message")
    builder.place("s_wait1", "sender waiting for the bit-1 acknowledgement")
    # Medium places.
    builder.place("m_msg0", "bit-0 message in transit")
    builder.place("m_msg1", "bit-1 message in transit")
    builder.place("d_msg0", "bit-0 message delivered to the receiver")
    builder.place("d_msg1", "bit-1 message delivered to the receiver")
    builder.place("m_ack0", "bit-0 acknowledgement in transit")
    builder.place("m_ack1", "bit-1 acknowledgement in transit")
    builder.place("s_ack0", "bit-0 acknowledgement delivered to the sender")
    builder.place("s_ack1", "bit-1 acknowledgement delivered to the sender")
    # Receiver places.
    builder.place("r_expect0", "receiver expecting the bit-0 message", tokens=1)
    builder.place("r_expect1", "receiver expecting the bit-1 message")

    for bit in (0, 1):
        other = 1 - bit
        builder.transition(
            f"send{bit}",
            inputs=[f"s_ready{bit}"],
            outputs=[f"s_wait{bit}", f"m_msg{bit}"],
            firing_time=send_time,
            description=f"sender transmits the bit-{bit} message",
        )
        builder.transition(
            f"timeout{bit}",
            inputs=[f"s_wait{bit}"],
            outputs=[f"s_ready{bit}"],
            enabling_time=timeout,
            firing_time=timeout_firing_time,
            frequency=1,
            description=f"sender timeout while waiting for the bit-{bit} acknowledgement",
        )
        builder.transition(
            f"deliver_msg{bit}",
            inputs=[f"m_msg{bit}"],
            outputs=[f"d_msg{bit}"],
            firing_time=packet_delay,
            frequency=1 - loss,
            description=f"medium delivers the bit-{bit} message",
        )
        builder.transition(
            f"lose_msg{bit}",
            inputs=[f"m_msg{bit}"],
            outputs=[],
            firing_time=packet_delay,
            frequency=loss,
            description=f"medium loses the bit-{bit} message",
        )
        builder.transition(
            f"accept{bit}",
            inputs=[f"d_msg{bit}", f"r_expect{bit}"],
            outputs=[f"m_ack{bit}", f"r_expect{other}"],
            firing_time=receiver_time,
            description=f"receiver accepts the bit-{bit} message and acknowledges it",
        )
        builder.transition(
            f"duplicate{bit}",
            inputs=[f"d_msg{bit}", f"r_expect{other}"],
            outputs=[f"m_ack{bit}", f"r_expect{other}"],
            firing_time=receiver_time,
            description=f"receiver re-acknowledges a duplicate bit-{bit} message",
        )
        builder.transition(
            f"deliver_ack{bit}",
            inputs=[f"m_ack{bit}"],
            outputs=[f"s_ack{bit}"],
            firing_time=ack_delay,
            frequency=1 - ack_loss,
            description=f"medium delivers the bit-{bit} acknowledgement",
        )
        builder.transition(
            f"lose_ack{bit}",
            inputs=[f"m_ack{bit}"],
            outputs=[],
            firing_time=ack_delay,
            frequency=ack_loss,
            description=f"medium loses the bit-{bit} acknowledgement",
        )
        builder.transition(
            f"got_ack{bit}",
            inputs=[f"s_wait{bit}", f"s_ack{bit}"],
            outputs=[f"s_ready{other}"],
            firing_time=ack_accept_time,
            frequency=0,
            description=f"sender accepts the bit-{bit} acknowledgement and moves to bit {other}",
        )
        builder.transition(
            f"stale_ack{bit}",
            inputs=[f"s_wait{other}", f"s_ack{bit}"],
            outputs=[f"s_wait{other}"],
            firing_time=ack_accept_time,
            frequency=0,
            description=f"sender discards a stale bit-{bit} acknowledgement",
        )
    return builder.build()


def message_accept_transitions() -> Dict[str, str]:
    """The transitions whose completions count as successfully delivered messages."""
    return {
        "accept0": "receiver accepts the bit-0 message",
        "accept1": "receiver accepts the bit-1 message",
    }
