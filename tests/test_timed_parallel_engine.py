"""Unit tests for the frontier-sharded *timed* engine and its pickling layer.

The cross-engine bit-identity of the timed parallel builds is gated by
``test_engine_diff.py`` (via the shared harness); this module covers the
subsystem's own machinery: pickling round-trips of timed compiled states and
of the algebra-parameterized ``CompiledNet`` tables (the spawn-platform
contract — memo tables must not ship), worker-count scaling, typed error
propagation out of worker processes, and the CLI parity of the timed
``reachability`` subcommand with ``untimed``.
"""

from __future__ import annotations

import pickle
from fractions import Fraction

import pytest

from engine_diff import (
    assert_timed_graphs_identical,
    build_symbolic_timed_parallel,
    build_timed_parallel,
)
from repro.cli import main as cli_main
from repro.exceptions import InsufficientConstraintsError
from repro.petri.builder import NetBuilder
from repro.protocols import (
    selective_repeat_net,
    simple_protocol_net,
    simple_protocol_symbolic,
    sliding_window_net,
)
from repro.reachability import timed_reachability_graph
from repro.reachability.algebra import numeric_algebras, symbolic_algebras
from repro.reachability.compiled import CompiledSuccessorEngine, _CompiledState
from repro.symbolic import time_symbol


def _numeric_engine(net=None):
    time_algebra, probability_algebra = numeric_algebras()
    return CompiledSuccessorEngine(net or simple_protocol_net(), time_algebra, probability_algebra)


def _symbolic_engine():
    net, constraints, _symbols = simple_protocol_symbolic()
    time_algebra, probability_algebra = symbolic_algebras(constraints)
    return CompiledSuccessorEngine(net, time_algebra, probability_algebra)


class TestCompiledStatePickling:
    def test_numeric_round_trip_preserves_identity_semantics(self):
        engine = _numeric_engine()
        state = engine.initial_state()
        # Walk a few steps so the state carries non-trivial RET/RFT entries.
        for _ in range(3):
            successors = engine.successors(state)
            assert successors
            state = successors[0].target
        clone = pickle.loads(pickle.dumps(state))
        assert isinstance(clone, _CompiledState)
        assert clone == state
        assert hash(clone) == hash(state)
        assert clone.vec == state.vec
        assert clone.ret == state.ret
        assert clone.rft == state.rft
        assert clone.enabled == state.enabled
        # The derived key sets are rebuilt, not shipped.
        assert clone.ret_keys == state.ret_keys
        assert clone.rft_keys == state.rft_keys

    def test_symbolic_round_trip_reinterns_clock_expressions(self):
        engine = _symbolic_engine()
        state = engine.initial_state()
        for _ in range(3):
            successors = engine.successors(state)
            assert successors
            state = successors[0].target
        clone = pickle.loads(pickle.dumps(state))
        assert clone == state
        assert hash(clone) == hash(state)
        # Clock expressions come back as the canonical interned instances, so
        # a state shipped from a peer process dedups against local ones by
        # identity, not just structural equality.
        for (_, original), (_, shipped) in zip(state.ret, clone.ret):
            assert shipped == original
            assert shipped is original.interned()

    def test_round_trip_expands_identically(self):
        engine = _numeric_engine(sliding_window_net(2, loss_probability=Fraction(1, 10)))
        state = engine.initial_state()
        clone = pickle.loads(pickle.dumps(state))
        original_edges = engine.successors(state)
        cloned_edges = engine.successors(clone)
        assert [e.target for e in original_edges] == [e.target for e in cloned_edges]
        assert [e.probability for e in original_edges] == [e.probability for e in cloned_edges]


class TestCompiledNetPickling:
    """The spawn-platform contract: tables ship, per-process memos do not."""

    def test_numeric_tables_drop_memo_caches(self):
        engine = _numeric_engine(sliding_window_net(2, loss_probability=Fraction(1, 10)))
        compiled = engine.compiled
        # Populate every memo the timed construction maintains.
        state = engine.initial_state()
        for edge in engine.successors(state):
            engine.successors(edge.target)
        assert compiled._enabled_cache and compiled._choice_cache
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone._enabled_cache == {}
        assert clone._choice_cache == {}
        assert clone._advance_cache == {}
        # ... while the structural and algebra columns survive.
        assert clone.transition_names == compiled.transition_names
        assert clone.enabling_value == compiled.enabling_value
        assert clone.firing_value == compiled.firing_value
        assert clone.group_of == compiled.group_of

    def test_rebound_engine_reproduces_successors(self):
        engine = _numeric_engine(sliding_window_net(2, loss_probability=Fraction(1, 10)))
        clone_tables = pickle.loads(pickle.dumps(engine.compiled))
        rebound = CompiledSuccessorEngine.from_tables(clone_tables)
        state = engine.initial_state()
        original = engine.successors(state)
        replayed = rebound.successors(pickle.loads(pickle.dumps(state)))
        assert [e.target for e in original] == [e.target for e in replayed]
        assert [e.delay for e in original] == [e.delay for e in replayed]
        assert [e.fired for e in original] == [e.fired for e in replayed]

    def test_symbolic_tables_drop_comparator_cache(self):
        engine = _symbolic_engine()
        # Drive the comparator so its Fourier–Motzkin memo fills.
        state = engine.initial_state()
        for edge in engine.successors(state):
            engine.successors(edge.target)
        comparator = engine.time.comparator
        assert comparator.cache_size() > 0
        clone = pickle.loads(pickle.dumps(engine.compiled))
        assert clone.time.comparator.cache_size() == 0
        assert clone.time.comparator.cache_stats()["hits"] == 0
        # The shipped comparator still resolves the same constraints.
        assert clone.time.constraints.labels() == engine.time.constraints.labels()


class TestTimedParallelEngine:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_worker_counts_all_bit_identical(self, workers):
        net = selective_repeat_net(2, loss_probability=Fraction(1, 10))
        parallel = build_timed_parallel(net, workers=workers)
        reference = timed_reachability_graph(net, engine="reference")
        assert_timed_graphs_identical(parallel, reference)

    def test_workers_spanning_more_shards_than_states(self):
        # More workers than reachable states: most shards stay empty, the
        # protocol must still terminate and renumber correctly.
        net = selective_repeat_net(1)
        parallel = build_timed_parallel(net, workers=5)
        reference = timed_reachability_graph(net, engine="reference")
        assert_timed_graphs_identical(parallel, reference)

    def test_workers_rejected_for_sequential_engines(self):
        with pytest.raises(ValueError, match="only meaningful with engine='parallel'"):
            timed_reachability_graph(simple_protocol_net(), engine="compiled", workers=2)

    def test_insufficient_constraints_propagate_typed(self):
        # Two concurrent symbolic timers with no ordering constraint: the
        # worker's comparator failure must surface with its original type,
        # exactly like the sequential engines.
        from repro.reachability import symbolic_timed_reachability_graph

        builder = NetBuilder("unordered-timers")
        builder.place("p1", "timer 1 armed", tokens=1)
        builder.place("p2", "timer 2 armed", tokens=1)
        builder.transition("t1", inputs=["p1"], outputs=[], firing_time=time_symbol("A"))
        builder.transition("t2", inputs=["p2"], outputs=[], firing_time=time_symbol("B"))
        net = builder.build()
        for kwargs in ({"engine": "compiled"}, {"engine": "parallel", "workers": 2}):
            with pytest.raises(InsufficientConstraintsError):
                symbolic_timed_reachability_graph(net, (), **kwargs)

    def test_symbolic_probabilities_cross_processes_exactly(self):
        # The paper net's branch probabilities are genuine RatFunc frequency
        # quotients; the worker-derived quotients must merge back exactly.
        from repro.reachability import symbolic_timed_reachability_graph

        net, constraints, _symbols = simple_protocol_symbolic()
        parallel = build_symbolic_timed_parallel(net, constraints, workers=3)
        sequential = symbolic_timed_reachability_graph(net, constraints)
        assert [e.probability for e in parallel.edges] == [
            e.probability for e in sequential.edges
        ]
        assert [str(e.delay) for e in parallel.edges] == [
            str(e.delay) for e in sequential.edges
        ]


class TestTimedCLIParity:
    def test_reachability_command_parallel_engine(self, capsys):
        exit_code = cli_main(
            ["reachability", "--model", "selective-repeat", "--engine", "parallel", "--workers", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "TimedReachabilityGraph" in output
        assert "parallel (2 workers)" in output

    def test_reachability_workers_require_parallel_engine(self):
        with pytest.raises(SystemExit, match="--workers requires --engine parallel"):
            cli_main(["reachability", "--model", "selective-repeat", "--workers", "2"])

    def test_reachability_invalid_worker_count(self):
        with pytest.raises(SystemExit, match="workers must be a positive integer"):
            cli_main(
                ["reachability", "--model", "selective-repeat", "--engine", "parallel", "--workers", "0"]
            )

    def test_reachability_max_states_reported(self, capsys):
        exit_code = cli_main(
            ["reachability", "--model", "selective-repeat", "--max-states", "5"]
        )
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "cannot enumerate" in output
