"""Tests for timed reachability graphs, symbolic graphs and decision graphs.

These are the Figure-4/5/6/7 reproduction tests: state counts, RET milestones,
decision-edge delays and probabilities, and the constraint-usage log are all
asserted against the paper's numbers.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import NotErgodicError, UnboundedNetError
from repro.petri import NetBuilder
from repro.protocols import (
    PAPER_DECISION_DELAYS,
    PAPER_RET_MILESTONES,
    PAPER_STATE_COUNT,
    simple_protocol_net,
    simple_protocol_symbolic,
    token_ring_net,
)
from repro.reachability import (
    decision_graph,
    firing_count_vector,
    is_strongly_connected,
    recurrent_states,
    summarize,
    symbolic_timed_reachability_graph,
    tangible_states,
    timed_reachability_graph,
    vanishing_states,
)
from repro.symbolic import evaluate_value


class TestNumericReachabilityGraph:
    def test_figure4_state_count(self, paper_trg):
        assert paper_trg.state_count == PAPER_STATE_COUNT

    def test_two_decision_nodes(self, paper_trg):
        assert len(paper_trg.decision_nodes()) == 2

    def test_no_dead_states(self, paper_trg):
        assert paper_trg.dead_nodes() == []

    def test_strongly_connected(self, paper_trg):
        assert is_strongly_connected(paper_trg)
        assert recurrent_states(paper_trg) == tuple(range(paper_trg.state_count))

    def test_ret_milestones_of_figure_4b(self, paper_trg):
        observed = set()
        for node in paper_trg.nodes:
            observed.update(node.state.remaining_enabling.values())
        for milestone in PAPER_RET_MILESTONES:
            assert milestone in observed

    def test_every_transition_fires_somewhere(self, paper_trg, paper_net):
        assert paper_trg.transitions_started() == frozenset(paper_net.transition_order)

    def test_edge_delays_and_probabilities_are_consistent(self, paper_trg):
        for edge in paper_trg.edges:
            if edge.kind == "fire":
                assert edge.delay == 0
                assert 0 < edge.probability <= 1
            else:
                assert edge.delay > 0
                assert edge.probability == 1

    def test_fire_edges_against_advance_edges(self, paper_trg):
        assert len(paper_trg.fire_edges()) + len(paper_trg.advance_edges()) == paper_trg.edge_count

    def test_vanishing_tangible_partition(self, paper_trg):
        vanishing = set(vanishing_states(paper_trg))
        tangible = set(tangible_states(paper_trg))
        assert vanishing | tangible == set(range(paper_trg.state_count))
        assert not vanishing & tangible
        assert paper_trg.initial_index in vanishing  # t1 fires immediately

    def test_state_table_shape(self, paper_trg, paper_net):
        table = paper_trg.state_table()
        assert len(table) == PAPER_STATE_COUNT
        expected_width = 1 + len(paper_net.place_order) + 2 * len(paper_net.transition_order)
        assert all(len(row) == expected_width for row in table)
        assert len(paper_trg.state_table_header()) == expected_width

    def test_edge_table_rows(self, paper_trg):
        assert len(paper_trg.edge_table()) == paper_trg.edge_count

    def test_networkx_export(self, paper_trg):
        graph = paper_trg.to_networkx()
        assert graph.number_of_nodes() == paper_trg.state_count
        assert graph.number_of_edges() == paper_trg.edge_count

    def test_max_states_guard(self, paper_net):
        with pytest.raises(UnboundedNetError):
            timed_reachability_graph(paper_net, max_states=5)

    def test_symbolic_net_rejected_by_numeric_builder(self, symbolic_protocol):
        net, _constraints, _symbols = symbolic_protocol
        with pytest.raises(ValueError):
            timed_reachability_graph(net)

    def test_markings_stay_safe(self, paper_trg):
        # the paper's restriction: the timed behaviour keeps the net 1-safe
        for node in paper_trg.nodes:
            assert node.state.marking.is_safe()

    def test_cycle_firing_counts_are_transition_invariants(self, paper_trg, paper_net):
        from repro.petri import transition_invariants

        decision = decision_graph(paper_trg)
        invariant_supports = {frozenset(inv.support) for inv in transition_invariants(paper_net)}
        # Every decision edge that returns to its own source is a cycle; its
        # firing-count vector must be a T-invariant of the net.
        for edge in decision.edges:
            if edge.target == edge.source:
                counts = firing_count_vector(paper_trg, edge.trg_edges)
                support = frozenset(name for name, count in counts.items() if count)
                assert support in invariant_supports

    def test_summary_dataclass(self, paper_trg):
        summary = summarize(paper_trg)
        assert summary.state_count == PAPER_STATE_COUNT
        assert summary.strongly_connected
        assert len(summary.decision_states) == 2
        assert not summary.dead_states


class TestDecisionGraphNumeric:
    def test_figure5_shape(self, paper_decision):
        assert paper_decision.anchor_count == 2
        assert paper_decision.edge_count == 4
        assert not paper_decision.has_absorbing_edge()

    def test_figure5_delays(self, paper_decision):
        delays = sorted(edge.delay for edge in paper_decision.edges)
        expected = sorted(PAPER_DECISION_DELAYS.values())
        assert delays == expected

    def test_figure5_probabilities(self, paper_decision):
        for anchor in paper_decision.anchors:
            outgoing = paper_decision.outgoing(anchor)
            assert sum(edge.probability for edge in outgoing) == 1
            assert sorted(edge.probability for edge in outgoing) == [Fraction(1, 20), Fraction(19, 20)]

    def test_loss_edge_is_a_self_loop(self, paper_decision):
        loss_edges = [e for e in paper_decision.edges if e.delay == Fraction(1002)]
        assert len(loss_edges) == 1
        assert loss_edges[0].source == loss_edges[0].target
        assert "t5" in loss_edges[0].fired

    def test_success_edge_fires_the_ack_accept_transition(self, paper_decision):
        success = [e for e in paper_decision.edges if e.delay == Fraction("122.2")]
        assert len(success) == 1
        assert "t2" in success[0].fired and "t7" in success[0].fired

    def test_busy_time_accounting(self, paper_decision):
        packet_edge = [e for e in paper_decision.edges if e.delay == Fraction("120.2")][0]
        # along the successful-packet edge, t4 fires for 106.7 ms and t6 for 13.5 ms
        assert paper_decision.busy_time(packet_edge, "t4") == Fraction("106.7")
        assert paper_decision.busy_time(packet_edge, "t6") == Fraction("13.5")
        assert paper_decision.busy_time(packet_edge, "t9") == 0

    def test_edges_firing_lookup(self, paper_decision):
        assert len(paper_decision.edges_firing("t1")) == 3  # every edge except packet-success
        assert len(paper_decision.edges_firing("t2")) == 1

    def test_edge_table(self, paper_decision):
        rows = paper_decision.edge_table()
        assert len(rows) == 4
        assert {row[0] for row in rows} == {"a1", "a2", "a3", "a4"}

    def test_decision_graph_of_deterministic_net_uses_fallback_anchor(self):
        ring = token_ring_net(3)
        graph = decision_graph(timed_reachability_graph(ring))
        assert graph.anchor_count == 1
        assert graph.edge_count == 1
        [edge] = graph.edges
        assert edge.source == edge.target
        assert edge.probability == 1
        assert edge.delay == Fraction(36)  # 3 * (10 + 2)

    def test_absorbing_decision_graph(self):
        builder = NetBuilder("absorbing")
        builder.transition("step", inputs=["p"], outputs=["q"], firing_time=1)
        builder.mark("p")
        graph = decision_graph(timed_reachability_graph(builder.build()))
        assert graph.has_absorbing_edge()
        with pytest.raises(NotErgodicError):
            from repro.performance import traversal_rates

            traversal_rates(graph)


class TestSymbolicReachabilityGraph:
    def test_figure6_state_count(self, symbolic_analysis):
        assert symbolic_analysis.reachability.state_count == PAPER_STATE_COUNT

    def test_symbolic_and_numeric_graphs_have_equal_shape(self, symbolic_analysis, paper_trg):
        symbolic = symbolic_analysis.reachability
        assert symbolic.edge_count == paper_trg.edge_count
        assert len(symbolic.decision_nodes()) == len(paper_trg.decision_nodes())

    def test_figure7_constraint_usage(self):
        net, constraints, _symbols = simple_protocol_symbolic(apply_equal_loss_delays=False)
        trg = symbolic_timed_reachability_graph(net, constraints)
        usage = trg.constraint_usage()
        assert len(usage) == 5  # the five multi-clock states of Figure 7
        used_sets = sorted(frozenset(used) for _, _, used in usage)
        assert used_sets.count(frozenset({"1"})) == 3
        assert frozenset({"1", "3"}) in used_sets
        assert frozenset({"1", "4"}) in used_sets
        assert trg.used_constraint_labels() == ("1", "3", "4")

    def test_symbolic_edges_specialize_to_numeric_delays(self, symbolic_analysis, paper_trg, paper_parameter_bindings):
        symbolic_delays = sorted(
            float(evaluate_value(edge.delay, paper_parameter_bindings))
            for edge in symbolic_analysis.reachability.advance_edges()
        )
        numeric_delays = sorted(float(edge.delay) for edge in paper_trg.advance_edges())
        assert symbolic_delays == pytest.approx(numeric_delays)

    def test_insufficient_constraints_are_reported(self):
        from repro.exceptions import InsufficientConstraintsError
        from repro.symbolic import ConstraintSet

        net, _constraints, _symbols = simple_protocol_symbolic()
        with pytest.raises(InsufficientConstraintsError):
            symbolic_timed_reachability_graph(net, ConstraintSet([]))

    def test_inconsistent_constraints_are_rejected(self):
        from repro.exceptions import InconsistentConstraintsError
        from repro.symbolic import Constraint, ConstraintSet, LinExpr

        net, _constraints, symbols = simple_protocol_symbolic()
        bad = ConstraintSet(
            [
                Constraint.greater(symbols["E3"], symbols["F4"]),
                Constraint.greater(symbols["F4"], symbols["E3"]),
            ]
        )
        with pytest.raises(InconsistentConstraintsError):
            symbolic_timed_reachability_graph(net, bad)

    def test_symbolic_decision_graph_probabilities_sum_to_one(self, symbolic_analysis):
        decision = symbolic_analysis.decision
        from repro.symbolic import RatFunc

        for anchor in decision.anchors:
            total = RatFunc.zero()
            for edge in decision.outgoing(anchor):
                total = total + RatFunc.coerce(edge.probability)
            assert total == 1
