"""Differential smoke gate: every compiled builder vs its other engines.

Runs every bundled workload (numeric and symbolic) through all four graph
families — timed reachability, untimed reachability, Karp–Miller
coverability and the GSPN marking graph — with ``engine="compiled"`` and
``engine="reference"`` and asserts the graphs are bit-identical via the
shared harness in :mod:`engine_diff`.  The untimed, GSPN and timed families
(numeric *and* symbolic) are additionally built with the third engine value,
``engine="parallel"`` (``workers=2``), gating the multiprocess
construction's deterministic merge on cross-process bit-identity; the
untimed and GSPN families also run through the fourth value,
``engine="batched"`` (the numpy level-batched kernel), held to the same
standard.  Workloads that are unbounded under a semantics must fail
identically through every engine.

CI runs this module (plus the randomized companion
``test_engine_random.py``) as a named differential gate.
"""

from __future__ import annotations

import pytest

from engine_diff import (
    NUMERIC_WORKLOADS,
    TIMED_WORKLOAD_IDS,
    TIMED_WORKLOADS,
    UNBOUNDED_UNTIMED,
    WORKLOAD_IDS,
    assert_coverability_graphs_identical,
    assert_gspn_explorations_identical,
    assert_gspn_results_identical,
    assert_timed_graphs_identical,
    assert_untimed_graphs_identical,
    build_coverability_pair,
    build_gspn_batched,
    build_gspn_pair,
    build_gspn_parallel,
    build_symbolic_timed_pair,
    build_symbolic_timed_parallel,
    build_timed_pair,
    build_timed_parallel,
    build_untimed_batched,
    build_untimed_pair,
    build_untimed_parallel,
    symbolic_workload,
)
from repro.exceptions import UnboundedNetError
from repro.petri import coverability_graph, reachability_graph
from repro.protocols import simple_protocol_net, sliding_window_net
from repro.reachability import timed_reachability_graph
from repro.stochastic import GSPNAnalysis

#: Per-workload GSPN settings: the timeout-racing protocol nets are
#: unbounded under exponential delays without truncation.
GSPN_SETTINGS = {
    "paper-protocol": {"place_capacity": 2},
    "alternating-bit": None,  # unbounded even truncated at 2 tokens/place
    "pipelined-stop-and-wait": {"place_capacity": 2, "solve": False},  # big CTMC; diff the exploration
}


class TestTimedDifferential:
    """The timed construction, re-checked here so the gate covers all four families."""

    @pytest.mark.parametrize("label,constructor", TIMED_WORKLOADS, ids=TIMED_WORKLOAD_IDS)
    def test_workload(self, label, constructor):
        compiled, reference = build_timed_pair(constructor())
        assert_timed_graphs_identical(compiled, reference)

    def test_symbolic_paper_net(self):
        net, constraints = symbolic_workload()
        compiled, reference = build_symbolic_timed_pair(net, constraints)
        assert_timed_graphs_identical(compiled, reference)
        assert compiled.constraint_usage() == reference.constraint_usage()

    @pytest.mark.parametrize("label,constructor", TIMED_WORKLOADS, ids=TIMED_WORKLOAD_IDS)
    def test_parallel_workload(self, label, constructor):
        # The cross-process determinism gate for the timed construction: the
        # frontier-sharded engine must reproduce the sequential FIFO
        # numbering *and* the worker-computed edge payloads (delays,
        # probabilities, fired/completed labels) bit for bit.
        net = constructor()
        parallel = build_timed_parallel(net)
        _compiled, reference = build_timed_pair(net)
        assert_timed_graphs_identical(parallel, reference)

    def test_symbolic_parallel(self):
        # Symbolic clock expressions and RatFunc probabilities cross the
        # process boundary through the hash-consing layer; the merged graph
        # must carry identical expressions and used-constraint labels.
        net, constraints = symbolic_workload()
        parallel = build_symbolic_timed_parallel(net, constraints)
        _compiled, reference = build_symbolic_timed_pair(net, constraints)
        assert_timed_graphs_identical(parallel, reference)
        assert parallel.constraint_usage() == reference.constraint_usage()
        assert parallel.used_constraint_labels() == reference.used_constraint_labels()

    def test_timed_max_states_fails_identically(self):
        net = simple_protocol_net()
        for engine, kwargs in (
            ("reference", {}),
            ("compiled", {}),
            ("parallel", {"workers": 2}),
        ):
            with pytest.raises(UnboundedNetError, match="timed reachability graph exceeded 5 "):
                timed_reachability_graph(net, max_states=5, engine=engine, **kwargs)


class TestUntimedReachabilityDifferential:
    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_workload(self, label, constructor):
        net = constructor()
        if label in UNBOUNDED_UNTIMED:
            for engine in ("compiled", "reference"):
                with pytest.raises(UnboundedNetError, match="untimed reachability exceeded"):
                    reachability_graph(net, max_states=500, engine=engine)
        else:
            compiled, reference = build_untimed_pair(net, max_states=30_000)
            assert_untimed_graphs_identical(compiled, reference)

    def test_symbolic_net_fails_identically(self):
        # The untimed rule ignores timing, so the symbolic paper net runs
        # through both engines — and is unbounded exactly like the numeric one.
        net, _constraints = symbolic_workload()
        for engine in ("compiled", "reference"):
            with pytest.raises(UnboundedNetError, match="untimed reachability exceeded"):
                reachability_graph(net, max_states=500, engine=engine)

    def test_compiled_is_the_default_engine(self):
        net = sliding_window_net(2)
        default = reachability_graph(net)
        explicit = reachability_graph(net, engine="compiled")
        assert_untimed_graphs_identical(default, explicit)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            reachability_graph(sliding_window_net(2), engine="turbo")


class TestCoverabilityDifferential:
    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_workload(self, label, constructor):
        compiled, reference = build_coverability_pair(constructor(), max_nodes=20_000)
        assert_coverability_graphs_identical(compiled, reference)
        # The unbounded untimed workloads are exactly the ones Karp–Miller
        # must flag with an ω component.
        assert compiled.is_bounded() == (label not in UNBOUNDED_UNTIMED)

    def test_symbolic_net(self):
        net, _constraints = symbolic_workload()
        compiled, reference = build_coverability_pair(net)
        assert_coverability_graphs_identical(compiled, reference)
        assert not compiled.is_bounded()

    def test_max_nodes_fails_identically(self):
        net = simple_protocol_net()
        for engine in ("compiled", "reference"):
            with pytest.raises(UnboundedNetError, match="coverability construction exceeded"):
                coverability_graph(net, max_nodes=5, engine=engine)

    def test_compiled_is_the_default_engine(self):
        default = coverability_graph(simple_protocol_net())
        explicit = coverability_graph(simple_protocol_net(), engine="compiled")
        assert_coverability_graphs_identical(default, explicit)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            coverability_graph(simple_protocol_net(), engine="turbo")


class TestParallelDifferential:
    """The frontier-sharded multiprocess engine vs the reference engine.

    ``workers=2`` is the smallest sharded configuration: it exercises
    cross-shard successor batches and the coordinator's deterministic
    renumbering, which must reproduce the sequential FIFO order bit for bit.
    """

    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_untimed_workload(self, label, constructor):
        net = constructor()
        if label in UNBOUNDED_UNTIMED:
            with pytest.raises(UnboundedNetError, match="untimed reachability exceeded"):
                build_untimed_parallel(net, max_states=500)
        else:
            parallel = build_untimed_parallel(net, max_states=30_000)
            _compiled, reference = build_untimed_pair(net, max_states=30_000)
            assert_untimed_graphs_identical(parallel, reference)

    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_gspn_workload(self, label, constructor):
        net = constructor()
        settings = GSPN_SETTINGS.get(label, {})
        if settings is None:
            with pytest.raises(UnboundedNetError, match="GSPN marking graph exceeded"):
                build_gspn_parallel(net, max_states=500, place_capacity=2)._explore()
            return
        settings = dict(settings)
        settings.pop("solve", None)
        parallel = build_gspn_parallel(net, **settings)
        reference = GSPNAnalysis(net, engine="reference", **settings)
        assert_gspn_explorations_identical(parallel, reference)

    def test_single_worker_degenerate_but_identical(self):
        net = sliding_window_net(2)
        parallel = build_untimed_parallel(net, workers=1)
        reference = reachability_graph(net, engine="reference")
        assert_untimed_graphs_identical(parallel, reference)

    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="workers must be a positive integer"):
            reachability_graph(sliding_window_net(2), engine="parallel", workers=0)

    def test_workers_rejected_for_sequential_engines(self):
        with pytest.raises(ValueError, match="only meaningful with engine='parallel'"):
            reachability_graph(sliding_window_net(2), engine="compiled", workers=2)
        with pytest.raises(ValueError, match="only meaningful with engine='parallel'"):
            GSPNAnalysis(simple_protocol_net(), place_capacity=2, workers=2)

    def test_coverability_rejects_parallel(self):
        with pytest.raises(ValueError, match="not supported by this builder"):
            coverability_graph(simple_protocol_net(), engine="parallel")


class TestBatchedDifferential:
    """The numpy level-batched kernel vs the reference engine.

    The batched kernel expands whole frontier levels through one
    ``(frontier × transitions)`` enabledness mask and deduplicates
    successors with packed integer keys; the FIFO renumbering of its
    discoveries must still match the one-marking-at-a-time loops bit for
    bit — including *where* the ``max_states`` valve fires on unbounded
    workloads (the token-growth path that forces key repacks).
    """

    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_untimed_workload(self, label, constructor):
        net = constructor()
        if label in UNBOUNDED_UNTIMED:
            with pytest.raises(UnboundedNetError, match="untimed reachability exceeded"):
                build_untimed_batched(net, max_states=500)
        else:
            batched = build_untimed_batched(net, max_states=30_000)
            _compiled, reference = build_untimed_pair(net, max_states=30_000)
            assert_untimed_graphs_identical(batched, reference)

    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_gspn_workload(self, label, constructor):
        net = constructor()
        settings = GSPN_SETTINGS.get(label, {})
        if settings is None:
            with pytest.raises(UnboundedNetError, match="GSPN marking graph exceeded"):
                build_gspn_batched(net, max_states=500, place_capacity=2)._explore()
            return
        settings = dict(settings)
        solve = settings.pop("solve", True)
        batched = build_gspn_batched(net, **settings)
        reference = GSPNAnalysis(net, engine="reference", **settings)
        assert_gspn_explorations_identical(batched, reference)
        if solve:
            assert_gspn_results_identical(batched.solve(), reference.solve())

    def test_symbolic_net_fails_identically(self):
        # The untimed rule ignores timing, so the symbolic paper net runs
        # through the batched kernel too — and is unbounded just like the
        # numeric one.
        net, _constraints = symbolic_workload()
        with pytest.raises(UnboundedNetError, match="untimed reachability exceeded"):
            build_untimed_batched(net, max_states=500)

    def test_build_stats_surface(self):
        net = sliding_window_net(2)
        batched = build_untimed_batched(net)
        compiled, _reference = build_untimed_pair(net)
        batched_stats = batched.build_stats()
        compiled_stats = compiled.build_stats()
        assert batched_stats.engine == "batched"
        assert compiled_stats.engine == "compiled"
        # Same graph, same totals — only the batching shape differs.
        assert batched_stats.states == compiled_stats.states == batched.state_count
        assert batched_stats.edges == compiled_stats.edges == batched.edge_count
        assert batched_stats.dedup_hits == compiled_stats.dedup_hits
        assert batched_stats.batches < batched_stats.states
        assert batched_stats.mean_batch_width > 1.0
        assert compiled_stats.mean_batch_width == 1.0
        assert batched_stats.states_per_second > 0
        assert set(batched_stats.as_dict()) == set(compiled_stats.as_dict())
        # The reference engine records no stats.
        assert reachability_graph(net, engine="reference").build_stats() is None

    def test_timed_builders_reject_batched(self):
        with pytest.raises(ValueError, match="not supported by this builder"):
            timed_reachability_graph(simple_protocol_net(), engine="batched")
        net, constraints = symbolic_workload()
        from repro.reachability import symbolic_timed_reachability_graph

        with pytest.raises(ValueError, match="not supported by this builder"):
            symbolic_timed_reachability_graph(net, constraints, engine="batched")

    def test_coverability_rejects_batched(self):
        with pytest.raises(ValueError, match="not supported by this builder"):
            coverability_graph(simple_protocol_net(), engine="batched")

    def test_workers_rejected_for_batched(self):
        with pytest.raises(ValueError, match="only meaningful with engine='parallel'"):
            reachability_graph(sliding_window_net(2), engine="batched", workers=2)
        with pytest.raises(ValueError, match="only meaningful with engine='parallel'"):
            GSPNAnalysis(simple_protocol_net(), place_capacity=2, engine="batched", workers=2)


class TestGSPNDifferential:
    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_workload(self, label, constructor):
        net = constructor()
        settings = GSPN_SETTINGS.get(label, {})
        if settings is None:
            for engine in ("compiled", "reference"):
                with pytest.raises(UnboundedNetError, match="GSPN marking graph exceeded"):
                    GSPNAnalysis(net, max_states=500, place_capacity=2, engine=engine)._explore()
            return
        settings = dict(settings)
        solve = settings.pop("solve", True)
        compiled, reference = build_gspn_pair(net, **settings)
        assert_gspn_explorations_identical(compiled, reference)
        if solve:
            assert_gspn_results_identical(compiled.solve(), reference.solve())

    def test_compiled_is_the_default_engine(self):
        default = GSPNAnalysis(simple_protocol_net(), place_capacity=2)
        explicit = GSPNAnalysis(simple_protocol_net(), place_capacity=2, engine="compiled")
        assert default.engine == "compiled"
        assert_gspn_explorations_identical(default, explicit)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            GSPNAnalysis(simple_protocol_net(), engine="turbo")

    def test_explicit_rates_respected_by_both_engines(self):
        net = simple_protocol_net()
        compiled, reference = build_gspn_pair(
            net, place_capacity=2, rates={"t2": 0.5}
        )
        assert_gspn_explorations_identical(compiled, reference)
        assert_gspn_results_identical(compiled.solve(), reference.solve())
