"""Unit tests for the frontier-sharded multiprocess engine and its satellites.

The cross-engine bit-identity of the parallel builders is gated by
``test_engine_diff.py`` (via the shared harness); this module covers the
subsystem's own machinery — worker resolution, tables pickling, worker-count
scaling, the GSPN end-to-end solve — plus the hot-path fixes that ride along
in the same change: the coverability parent-index chain and the shared
branch-probability cache.
"""

from __future__ import annotations

import pickle
from fractions import Fraction

import pytest

from engine_diff import (
    assert_gspn_results_identical,
    assert_untimed_graphs_identical,
    build_untimed_parallel,
)
from repro.engine import NetTables
from repro.engine.parallel import resolve_workers
from repro.exceptions import UnboundedNetError
from repro.petri import coverability_graph, reachability_graph
from repro.protocols import (
    go_back_n_net,
    simple_protocol_net,
    sliding_window_net,
)
from repro.reachability import timed_reachability_graph
from repro.reachability.algebra import branch_cache_stats, clear_branch_caches
from repro.stochastic import GSPNAnalysis


class TestResolveWorkers:
    def test_explicit_counts_accepted(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_default_is_at_least_two(self):
        # None means "one per CPU, but never less than the smallest sharded
        # configuration" — a single-worker default would never exercise
        # cross-shard batches.
        assert resolve_workers(None) >= 2

    @pytest.mark.parametrize("bogus", [0, -1, 2.5, True, "two"])
    def test_invalid_counts_rejected(self, bogus):
        with pytest.raises(ValueError, match="workers must be a positive integer"):
            resolve_workers(bogus)


class TestNetTablesPickling:
    def test_round_trip_preserves_tables(self):
        net = sliding_window_net(2, loss_probability=Fraction(1, 10))
        tables = NetTables(net)
        vec = tables.initial_vector()
        tables.enabled_transitions(vec)  # populate the memo that must be dropped
        clone = pickle.loads(pickle.dumps(tables))
        assert clone.place_names == tables.place_names
        assert clone.transition_names == tables.transition_names
        assert clone.inputs == tables.inputs
        assert clone.outputs == tables.outputs
        assert clone.deltas == tables.deltas
        assert clone.consumers_of_place == tables.consumers_of_place
        assert clone.group_of == tables.group_of

    def test_enabled_memo_not_shipped(self):
        net = sliding_window_net(2)
        tables = NetTables(net)
        tables.enabled_transitions(tables.initial_vector())
        assert tables._enabled_cache
        clone = pickle.loads(pickle.dumps(tables))
        assert clone._enabled_cache == {}
        # ... and the clone still computes the same enabled sets.
        vec = clone.initial_vector()
        assert clone.enabled_transitions(vec) == tables.enabled_transitions(vec)

    def test_fire_after_round_trip(self):
        net = go_back_n_net(2, loss_probability=Fraction(1, 10))
        tables = NetTables(net)
        clone = pickle.loads(pickle.dumps(tables))
        vec = tables.initial_vector()
        for transition in tables.enabled_transitions(vec):
            assert clone.fire_atomic(vec, transition) == tables.fire_atomic(vec, transition)


class TestParallelEngine:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_worker_counts_all_bit_identical(self, workers):
        net = go_back_n_net(2, loss_probability=Fraction(1, 10))
        parallel = build_untimed_parallel(net, workers=workers)
        reference = reachability_graph(net, engine="reference")
        assert_untimed_graphs_identical(parallel, reference)

    def test_gspn_solve_matches_reference_end_to_end(self):
        net = sliding_window_net(2, loss_probability=Fraction(1, 10))
        parallel = GSPNAnalysis(net, engine="parallel", workers=2)
        reference = GSPNAnalysis(net, engine="reference")
        assert_gspn_results_identical(parallel.solve(), reference.solve())

    def test_max_states_failure_matches_sequential_engines(self):
        net = simple_protocol_net()
        for engine, kwargs in (
            ("reference", {}),
            ("compiled", {}),
            ("parallel", {"workers": 2}),
        ):
            with pytest.raises(UnboundedNetError, match="untimed reachability exceeded 500"):
                reachability_graph(net, max_states=500, engine=engine, **kwargs)

    def test_workers_spanning_more_shards_than_states(self):
        # More workers than reachable states: most shards stay empty, the
        # protocol must still terminate and renumber correctly.
        net = sliding_window_net(1)
        parallel = build_untimed_parallel(net, workers=5)
        reference = reachability_graph(net, engine="reference")
        assert_untimed_graphs_identical(parallel, reference)


class TestCoverabilityParentChain:
    """The parent-index chain must reproduce the ancestor-tuple semantics."""

    def test_deep_graph_matches_reference(self):
        # go-back-N serializes sends, so its coverability exploration is deep
        # relative to its width — the shape the O(n·depth) ancestor tuples
        # were worst at.
        net = go_back_n_net(3, loss_probability=Fraction(1, 10))
        compiled = coverability_graph(net, engine="compiled")
        reference = coverability_graph(net, engine="reference")
        assert [n.vector for n in compiled.nodes] == [n.vector for n in reference.nodes]
        assert compiled.edges == reference.edges

    def test_unbounded_net_still_accelerates(self):
        compiled = coverability_graph(simple_protocol_net(), engine="compiled")
        reference = coverability_graph(simple_protocol_net(), engine="reference")
        assert not compiled.is_bounded()
        assert compiled.unbounded_places() == reference.unbounded_places()
        assert [n.vector for n in compiled.nodes] == [n.vector for n in reference.nodes]


class TestBranchProbabilityCache:
    """The cross-construction cache keyed on conflict-set frequency tuples."""

    def setup_method(self):
        clear_branch_caches()

    def teardown_method(self):
        clear_branch_caches()

    def test_repeated_numeric_builds_hit_the_cache(self):
        build = lambda: timed_reachability_graph(
            sliding_window_net(2, loss_probability=Fraction(1, 10))
        )
        first = build()
        after_first = branch_cache_stats()["numeric"]
        second = build()
        after_second = branch_cache_stats()["numeric"]
        # The window slots share frequency tuples, so even the first build
        # hits; the second build derives nothing new.
        assert after_second["size"] == after_first["size"]
        assert after_second["hits"] > after_first["hits"]
        # Sharing the derivation must not change the graph.
        assert [e.probability for e in second.edges] == [e.probability for e in first.edges]

    def test_repeated_symbolic_builds_share_ratfunc_quotients(self):
        from repro.protocols import simple_protocol_symbolic
        from repro.reachability import symbolic_timed_reachability_graph

        net, constraints, _symbols = simple_protocol_symbolic()
        first = symbolic_timed_reachability_graph(net, constraints)
        after_first = branch_cache_stats()["symbolic"]
        assert after_first["size"] > 0
        net2, constraints2, _symbols2 = simple_protocol_symbolic()
        second = symbolic_timed_reachability_graph(net2, constraints2)
        after_second = branch_cache_stats()["symbolic"]
        assert after_second["size"] == after_first["size"]
        assert after_second["hits"] > after_first["hits"]
        assert [e.probability for e in second.edges] == [e.probability for e in first.edges]

    def test_clear_resets_counters(self):
        timed_reachability_graph(sliding_window_net(2, loss_probability=Fraction(1, 10)))
        clear_branch_caches()
        stats = branch_cache_stats()
        for flavour in ("numeric", "symbolic"):
            assert stats[flavour]["size"] == 0
            assert stats[flavour]["hits"] == 0
            assert stats[flavour]["misses"] == 0
