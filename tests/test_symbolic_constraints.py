"""Tests for Fourier-Motzkin feasibility, constraint sets and the symbolic comparator."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InconsistentConstraintsError, InsufficientConstraintsError
from repro.symbolic import (
    Constraint,
    ConstraintSet,
    LinExpr,
    SymbolicComparator,
    as_expr,
    is_feasible,
    time_symbol,
)

A = time_symbol("A")
B = time_symbol("B")
C = time_symbol("C")


def ineq(coefficients, constant=0, strict=False):
    return ({symbol: Fraction(value) for symbol, value in coefficients.items()}, Fraction(constant), strict)


class TestFourierMotzkin:
    def test_trivially_feasible(self):
        assert is_feasible([])
        assert is_feasible([ineq({A: 1})])  # A >= 0

    def test_infeasible_pair(self):
        # A >= 1 and -A >= 0  (i.e. A <= 0)
        assert not is_feasible([ineq({A: 1}, -1), ineq({A: -1})])

    def test_strict_vs_nonstrict(self):
        # A >= 0 and -A >= 0 is feasible (A = 0); A > 0 and -A >= 0 is not.
        assert is_feasible([ineq({A: 1}), ineq({A: -1})])
        assert not is_feasible([ineq({A: 1}, 0, True), ineq({A: -1})])

    def test_chained_inequalities(self):
        # A >= B, B >= C, C >= A + 1 is infeasible.
        rows = [
            ineq({A: 1, B: -1}),
            ineq({B: 1, C: -1}),
            ineq({C: 1, A: -1}, -1),
        ]
        assert not is_feasible(rows)

    def test_constant_rows(self):
        assert is_feasible([(dict(), Fraction(1), False)])
        assert not is_feasible([(dict(), Fraction(-1), False)])
        assert not is_feasible([(dict(), Fraction(0), True)])

    @settings(max_examples=30)
    @given(st.integers(-5, 5), st.integers(-5, 5))
    def test_interval_feasibility(self, low, high):
        # low <= A <= high is feasible iff low <= high.
        rows = [ineq({A: 1}, -low), ineq({A: -1}, high)]
        assert is_feasible(rows) == (low <= high)


class TestConstraintSet:
    def test_labels_default_to_positions(self):
        constraints = ConstraintSet([Constraint.greater(A, B), Constraint.equal(B, C)])
        assert constraints.labels() == ("1", "2")

    def test_consistency(self):
        consistent = ConstraintSet([Constraint.greater(A, B)])
        assert consistent.is_consistent()
        consistent.assert_consistent()
        contradictory = ConstraintSet([Constraint.greater(A, B), Constraint.greater(B, A)])
        assert not contradictory.is_consistent()
        with pytest.raises(InconsistentConstraintsError):
            contradictory.assert_consistent()

    def test_entailment_uses_implicit_nonnegativity(self):
        constraints = ConstraintSet([Constraint.greater(A, B)])
        # A > B and B >= 0 (implicit) entail A > 0.
        assert constraints.entails(Constraint.greater(as_expr(A), LinExpr.zero()))

    def test_entailment_without_implicit_nonnegativity(self):
        constraints = ConstraintSet([Constraint.greater(A, B)], implicit_nonnegative=False)
        assert not constraints.entails(Constraint.greater(as_expr(A), LinExpr.zero()))

    def test_entails_with_support_finds_minimal_subset(self):
        constraints = ConstraintSet(
            [
                Constraint.greater(A, B, label="big"),
                Constraint.equal(C, B, label="eq"),
                Constraint.greater_equal(B, LinExpr.zero(), label="unused"),
            ]
        )
        holds, support = constraints.entails_with_support(Constraint.greater(A, C))
        assert holds
        assert set(support) == {"big", "eq"}

    def test_entails_with_support_reports_failure(self):
        constraints = ConstraintSet([Constraint.greater(A, B)])
        holds, support = constraints.entails_with_support(Constraint.greater(B, A))
        assert not holds and support == ()

    def test_equality_entailment(self):
        constraints = ConstraintSet([Constraint.equal(A, B)])
        assert constraints.entails(Constraint.equal(B, A))
        assert constraints.entails(Constraint.greater_equal(A, B))
        assert not constraints.entails(Constraint.greater(A, B))

    def test_with_extra_does_not_mutate(self):
        base = ConstraintSet([Constraint.greater(A, B)])
        extended = base.with_extra(Constraint.greater(B, C))
        assert len(base) == 1 and len(extended) == 2

    def test_sample_point_satisfies_constraints(self):
        constraints = ConstraintSet(
            [Constraint.greater(A, B), Constraint.greater(B, C), Constraint.greater(C, LinExpr.constant(1))]
        )
        point = constraints.sample_point()
        assert constraints.satisfied_by(point)
        assert point[A] > point[B] > point[C] > 1

    def test_sample_point_rejects_inconsistent_sets(self):
        constraints = ConstraintSet([Constraint.greater(A, B), Constraint.greater(B, A)])
        with pytest.raises(InconsistentConstraintsError):
            constraints.sample_point()

    def test_trivially_true_constraint(self):
        assert Constraint.greater_equal(LinExpr.constant(1), LinExpr.zero()).is_trivially_true()
        assert not Constraint.greater(A, B).is_trivially_true()


class TestComparator:
    @pytest.fixture()
    def comparator(self):
        constraints = ConstraintSet(
            [
                Constraint.greater(A, as_expr(B) + C, label="1"),
                Constraint.equal(C, B, label="2"),
            ]
        )
        return SymbolicComparator(constraints)

    def test_sign_classification(self, comparator):
        assert comparator.sign(LinExpr.zero()) == "zero"
        assert comparator.sign(as_expr(A) - B) == "positive"
        assert comparator.sign(as_expr(B) - A) == "negative"
        assert comparator.is_positive(as_expr(A) - B - C)
        assert comparator.is_zero(as_expr(C) - B)

    def test_sign_of_undetermined_expression_raises(self, comparator):
        with pytest.raises(InsufficientConstraintsError) as error:
            comparator.sign(as_expr(B) - 5)
        assert error.value.expressions

    def test_pairwise_comparisons(self, comparator):
        assert comparator.compare(as_expr(B), as_expr(A)) == "<"
        assert comparator.compare(as_expr(A), as_expr(B)) == ">"
        assert comparator.compare(as_expr(B), as_expr(C)) == "=="
        assert comparator.compare(as_expr(B), LinExpr.constant(3)) is None

    def test_minimum_with_support(self, comparator):
        result = comparator.minimum_of({"a": as_expr(A), "b": as_expr(B)})
        assert result.minimum == as_expr(B)
        assert result.minimal_keys == ("b",)
        assert "1" in result.used_constraints

    def test_minimum_reports_ties(self, comparator):
        result = comparator.minimum_of({"b": as_expr(B), "c": as_expr(C), "a": as_expr(A)})
        assert set(result.minimal_keys) == {"b", "c"}

    def test_minimum_requires_resolvable_order(self):
        comparator = SymbolicComparator(ConstraintSet([]))
        with pytest.raises(InsufficientConstraintsError):
            comparator.minimum_of({"a": as_expr(A), "b": as_expr(B)})

    def test_minimum_failure_reports_genuinely_undecidable_pair(self):
        # C is provably >= both A and B, but A vs B is left open: the failure
        # hint must name (A, B) — the actually missing constraint — and not a
        # pair involving C, whose ordering against either is provable.  (The
        # old diagnosis paired `distinct[0]` with the *last* candidate's
        # blocker, here yielding the vacuous pair (A, A).)
        comparator = SymbolicComparator(
            ConstraintSet(
                [
                    Constraint.greater_equal(C, A, label="1"),
                    Constraint.greater_equal(C, B, label="2"),
                ]
            )
        )
        with pytest.raises(InsufficientConstraintsError) as error:
            comparator.minimum_of({"a": as_expr(A), "b": as_expr(B), "c": as_expr(C)})
        reported = error.value.expressions
        assert len(reported) >= 2
        # Every reported expression belongs to an undecidable pair; in
        # particular the first two really cannot be ordered either way.
        first, second = reported[0], reported[1]
        assert first != second
        assert not comparator.less_equal(first, second)[0]
        assert not comparator.less_equal(second, first)[0]
        assert {first, second} == {as_expr(A), as_expr(B)}

    def test_minimum_of_empty_rejected(self, comparator):
        with pytest.raises(ValueError):
            comparator.minimum_of({})

    def test_constant_fast_path(self):
        comparator = SymbolicComparator(ConstraintSet([]))
        result = comparator.minimum_of({"x": LinExpr.constant(3), "y": LinExpr.constant(5)})
        assert result.minimum == LinExpr.constant(3)
        assert result.used_constraints == ()

    def test_assert_positive(self, comparator):
        assert comparator.assert_positive(as_expr(A) - B) == ("1",)
        with pytest.raises(InsufficientConstraintsError):
            SymbolicComparator(ConstraintSet([])).assert_positive(as_expr(A) - B)

    def test_queries_are_cached(self, comparator):
        before = comparator.cache_size()
        comparator.is_positive(as_expr(A) - B)
        middle = comparator.cache_size()
        comparator.is_positive(as_expr(A) - B)
        assert comparator.cache_size() == middle >= before


class TestPaperConstraints:
    """The comparisons of the paper's Figure 7, expressed directly."""

    @pytest.fixture()
    def paper_comparator(self, symbolic_protocol):
        _net, constraints, _symbols = symbolic_protocol
        return SymbolicComparator(constraints), _symbols

    def test_state4_uses_constraint_1(self, paper_comparator):
        comparator, symbols = paper_comparator
        result = comparator.minimum_of({"t3": as_expr(symbols["E3"]), "t4": as_expr(symbols["F4"])})
        assert result.minimal_keys == ("t4",)
        assert result.used_constraints == ("1",)

    def test_state5_uses_constraints_1_and_3(self, paper_comparator):
        comparator, symbols = paper_comparator
        result = comparator.minimum_of({"t3": as_expr(symbols["E3"]), "t5": as_expr(symbols["F5"])})
        assert result.minimal_keys == ("t5",)
        assert set(result.used_constraints) == {"1", "3"}

    def test_state13_uses_constraints_1_and_4(self, paper_comparator):
        comparator, symbols = paper_comparator
        remaining = as_expr(symbols["E3"]) - symbols["F4"] - symbols["F6"]
        result = comparator.minimum_of({"t3": remaining, "t9": as_expr(symbols["F9"])})
        assert result.minimal_keys == ("t9",)
        assert set(result.used_constraints) == {"1", "4"}
