"""Interrupt/resume determinism gate: checkpointed builds vs cold builds.

Every store-capable builder (compiled untimed reachability, Karp–Miller
coverability, the GSPN marking graph, the batched kernels, the query layer)
is interrupted at several points on every bundled workload — by a
deterministic deadline (:class:`~repro.engine.faults.SteppingClock`) and by
an injected hard crash between periodic checkpoints — resumed from the
checkpoint directory, and held to **exact graph equality** against a cold
uninterrupted build through the assertions of :mod:`engine_diff`.  A seeded
randomized crash-point sweep backs the fixed points.

The durable-store failure semantics ride along: reopen integrity probes
must name the corrupt shard, transient SQLite lock errors must be absorbed
by bounded retry (engine store and the artifact cache's disk tier alike),
and non-transient write failures must surface as typed ``StoreError``.

CI runs this module in the fault-injection step.
"""

from __future__ import annotations

import os
import pickle
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from engine_diff import (
    NUMERIC_WORKLOADS,
    UNBOUNDED_UNTIMED,
    WORKLOAD_IDS,
    assert_coverability_graphs_identical,
    assert_gspn_explorations_identical,
    assert_untimed_graphs_identical,
    crash_and_resume,
    interrupt_and_resume,
)
from repro.engine import faults
from repro.engine.faults import FaultPlan, SteppingClock
from repro.engine.query import bound_check, find_deadlock, is_reachable, search
from repro.engine.runtime import (
    MANIFEST_NAME,
    CancellationToken,
    Checkpoint,
    RunControl,
    resume,
    write_manifest,
)
from repro.exceptions import (
    BuildInterruptedError,
    StoreCorruptionError,
    StoreError,
)
from repro.petri import coverability_graph, reachability_graph
from repro.stochastic import GSPNAnalysis

BOUNDED_WORKLOADS = [
    (label, constructor)
    for label, constructor in NUMERIC_WORKLOADS
    if label not in UNBOUNDED_UNTIMED
]
BOUNDED_IDS = [label for label, _constructor in BOUNDED_WORKLOADS]

#: Deterministic deadline budgets (clock readings before expiry).  Small
#: budgets interrupt within the first BFS levels; the larger one lands the
#: interruption mid-build on every bundled workload.
EXPIRE_POINTS = (2, 6)


def test_deadline_interrupt_without_checkpoint_dir_is_not_resumable():
    net = dict(NUMERIC_WORKLOADS)["token-ring"]()
    control = RunControl(deadline=2.0, clock=SteppingClock())
    with pytest.raises(BuildInterruptedError) as excinfo:
        reachability_graph(net, engine="compiled", control=control)
    assert excinfo.value.checkpoint is None
    assert excinfo.value.reason == "deadline"


class TestDeadlineResume:
    """Deadline-interrupted builds resume bit-identically on every workload."""

    @pytest.mark.parametrize("expire_after", EXPIRE_POINTS)
    @pytest.mark.parametrize("label,constructor", BOUNDED_WORKLOADS, ids=BOUNDED_IDS)
    def test_untimed(self, tmp_path, label, constructor, expire_after):
        net = constructor()
        resumed, interrupted = interrupt_and_resume(
            lambda control: reachability_graph(net, engine="compiled", control=control),
            checkpoint_dir=str(tmp_path / "ckpt"),
            expire_after=expire_after,
        )
        assert interrupted, "budget was large enough to finish; shrink it"
        cold = reachability_graph(net, engine="compiled")
        assert_untimed_graphs_identical(resumed, cold)

    @pytest.mark.parametrize("label,constructor", BOUNDED_WORKLOADS, ids=BOUNDED_IDS)
    def test_batched_untimed(self, tmp_path, label, constructor):
        net = constructor()
        resumed, interrupted = interrupt_and_resume(
            lambda control: reachability_graph(net, engine="batched", control=control),
            checkpoint_dir=str(tmp_path / "ckpt"),
            expire_after=2,
        )
        assert interrupted
        cold = reachability_graph(net, engine="batched")
        assert_untimed_graphs_identical(resumed, cold)

    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_coverability(self, tmp_path, label, constructor):
        # Coverability handles the unbounded protocol nets too (that is its
        # point), so every workload participates.
        net = constructor()
        resumed, interrupted = interrupt_and_resume(
            lambda control: coverability_graph(net, engine="compiled", control=control),
            checkpoint_dir=str(tmp_path / "ckpt"),
            expire_after=2,
        )
        assert interrupted
        cold = coverability_graph(net, engine="compiled")
        assert_coverability_graphs_identical(resumed, cold)

    @pytest.mark.parametrize("engine", ["compiled", "batched"])
    @pytest.mark.parametrize(
        "label", ["producer-consumer", "token-ring", "go-back-n"]
    )
    def test_gspn(self, tmp_path, label, engine):
        net = dict(NUMERIC_WORKLOADS)[label]()

        def build(control):
            analysis = GSPNAnalysis(net, engine=engine, control=control)
            analysis._explore()
            return analysis

        resumed, interrupted = interrupt_and_resume(
            build, checkpoint_dir=str(tmp_path / "ckpt"), expire_after=2
        )
        assert interrupted
        assert_gspn_explorations_identical(resumed, GSPNAnalysis(net, engine=engine))


class TestCrashResume:
    """Hard crashes between periodic checkpoints lose work, never results."""

    @pytest.mark.parametrize("crash_at", (2, 7))
    @pytest.mark.parametrize("label,constructor", BOUNDED_WORKLOADS, ids=BOUNDED_IDS)
    def test_untimed(self, tmp_path, label, constructor, crash_at):
        net = constructor()
        cold = reachability_graph(net, engine="compiled")
        if cold.state_count <= crash_at:
            pytest.skip(f"{label} finishes before expansion {crash_at}")
        resumed = crash_and_resume(
            lambda control: reachability_graph(net, engine="compiled", control=control),
            checkpoint_dir=str(tmp_path / "ckpt"),
            crash_at=crash_at,
            checkpoint_every=1,
        )
        assert_untimed_graphs_identical(resumed, cold)

    def test_sparse_checkpoints_rewind_the_store(self, tmp_path):
        # checkpoint_every=3 with a crash at 7: the store's log holds items
        # committed after the last manifest (cursor 6); resume must rewind
        # to the manifest and still complete bit-identically.
        net = dict(NUMERIC_WORKLOADS)["go-back-n"]()
        resumed = crash_and_resume(
            lambda control: reachability_graph(net, engine="compiled", control=control),
            checkpoint_dir=str(tmp_path / "ckpt"),
            crash_at=7,
            checkpoint_every=3,
        )
        assert_untimed_graphs_identical(
            resumed, reachability_graph(net, engine="compiled")
        )

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
        derandomize=True,
    )
    @given(
        workload=st.sampled_from(BOUNDED_IDS),
        crash_at=st.integers(min_value=2, max_value=20),
    )
    def test_random_crash_points(self, tmp_path, workload, crash_at):
        net = dict(NUMERIC_WORKLOADS)[workload]()
        cold = reachability_graph(net, engine="compiled")
        if cold.state_count <= crash_at:
            return  # finishes before the scheduled crash
        checkpoint_dir = str(tmp_path / f"ckpt-{workload}-{crash_at}")
        resumed = crash_and_resume(
            lambda control: reachability_graph(net, engine="compiled", control=control),
            checkpoint_dir=checkpoint_dir,
            crash_at=crash_at,
            checkpoint_every=1,
        )
        assert_untimed_graphs_identical(resumed, cold)


class TestQueryResume:
    """Interrupted queries resume to the same answer, witness and path."""

    @staticmethod
    def _interrupt_query(tmp_path, run):
        control = RunControl(
            deadline=2.0,
            checkpoint_dir=str(tmp_path / "ckpt"),
            clock=SteppingClock(),
        )
        with pytest.raises(BuildInterruptedError) as excinfo:
            run(control)
        assert excinfo.value.checkpoint is not None
        return resume(excinfo.value.checkpoint)

    def test_find_deadlock_exhaustive(self, tmp_path):
        net = dict(NUMERIC_WORKLOADS)["go-back-n"]()
        cold = find_deadlock(net)
        resumed = self._interrupt_query(
            tmp_path, lambda control: find_deadlock(net, control=control)
        )
        assert (resumed.found, resumed.states_explored) == (
            cold.found,
            cold.states_explored,
        )

    def test_is_reachable_witness_and_path(self, tmp_path):
        net = dict(NUMERIC_WORKLOADS)["go-back-n"]()
        graph = reachability_graph(net, engine="compiled")
        target = graph.markings[-1]  # the deepest-discovered marking
        cold = is_reachable(net, target)
        assert cold.found
        resumed = self._interrupt_query(
            tmp_path, lambda control: is_reachable(net, target, control=control)
        )
        assert resumed.found
        assert resumed.witness == cold.witness
        assert resumed.witness_depth == cold.witness_depth
        assert resumed.path == cold.path
        assert resumed.states_explored == cold.states_explored

    def test_bound_check_negative(self, tmp_path):
        net = dict(NUMERIC_WORKLOADS)["token-ring"]()
        place = net.place_order[0]
        cold = bound_check(net, place, 10)
        assert not cold.found
        resumed = self._interrupt_query(
            tmp_path, lambda control: bound_check(net, place, 10, control=control)
        )
        assert (resumed.found, resumed.states_explored) == (
            cold.found,
            cold.states_explored,
        )

    def test_predicate_search_rejects_checkpointing(self, tmp_path):
        # An arbitrary Python predicate cannot be rebuilt from a manifest.
        net = dict(NUMERIC_WORKLOADS)["token-ring"]()
        control = RunControl(checkpoint_dir=str(tmp_path / "ckpt"))
        with pytest.raises(ValueError, match="predicate search"):
            search(net, lambda marking: False, control=control)


class TestStoreFailureSemantics:
    """Typed errors and bounded retry on the durable-store path."""

    @staticmethod
    def _checkpoint_dir(tmp_path, net) -> str:
        checkpoint_dir = str(tmp_path / "ckpt")
        control = RunControl(
            deadline=3.0, checkpoint_dir=checkpoint_dir, clock=SteppingClock()
        )
        with pytest.raises(BuildInterruptedError):
            reachability_graph(net, engine="compiled", control=control)
        return checkpoint_dir

    def test_corrupt_shard_named_on_reopen(self, tmp_path):
        net = dict(NUMERIC_WORKLOADS)["go-back-n"]()
        checkpoint_dir = self._checkpoint_dir(tmp_path, net)
        store_dir = os.path.join(checkpoint_dir, "store")
        victim = sorted(
            name for name in os.listdir(store_dir) if name.endswith(".db")
        )[0]
        with open(os.path.join(store_dir, victim), "r+b") as handle:
            handle.seek(0)
            handle.write(b"\xff" * 64)  # clobber the SQLite header
        with pytest.raises(StoreCorruptionError) as excinfo:
            resume(Checkpoint.load(checkpoint_dir))
        assert excinfo.value.shard == victim
        assert victim in str(excinfo.value)

    def test_transient_locks_absorbed_by_retry(self, tmp_path):
        net = dict(NUMERIC_WORKLOADS)["token-ring"]()
        cold = reachability_graph(net, engine="compiled")
        with faults.inject(FaultPlan(locked_writes=2)):
            built = reachability_graph(
                net, engine="compiled", store="disk", spill_threshold=0
            )
        assert_untimed_graphs_identical(built, cold)

    def test_broken_write_surfaces_as_store_error(self, tmp_path):
        net = dict(NUMERIC_WORKLOADS)["token-ring"]()
        with faults.inject(FaultPlan(broken_write_at=1)):
            with pytest.raises(StoreError):
                reachability_graph(
                    net, engine="compiled", store="disk", spill_threshold=0
                )

    def test_artifact_cache_retry_and_typed_error(self, tmp_path):
        from repro.analysis.cache import ArtifactCache

        net = dict(NUMERIC_WORKLOADS)["token-ring"]()
        with ArtifactCache(str(tmp_path / "cache")) as cache:
            key = cache.key_for(net, "stage-a")
            with faults.inject(FaultPlan(locked_writes=2)):
                artifact, tier = cache.fetch(
                    key, stage="stage-a", build=lambda: {"answer": 42}
                )
            assert (artifact, tier) == ({"answer": 42}, "built")
            with faults.inject(FaultPlan(broken_write_at=1)):
                with pytest.raises(StoreError):
                    cache.fetch(
                        cache.key_for(net, "stage-b"),
                        stage="stage-b",
                        build=lambda: {"answer": 43},
                    )


class TestCancellationTokenRace:
    """``cancel()`` is a locked test-and-set: of two concurrent cancellers
    (a server's DELETE handler racing a deadline timer) the **first** reason
    must win.  (Regression: an unlocked check-then-set let both pass the
    ``is_set`` gate, and the last writer's reason won.)"""

    class _SlowEvent(threading.Event):
        """An Event whose ``set()`` dallies — widening the check-then-set
        window from nanoseconds to a deterministic 200ms."""

        def set(self):
            time.sleep(0.2)
            super().set()

    def test_first_reason_wins_under_contention(self):
        token = CancellationToken()
        token._event = self._SlowEvent()

        first = threading.Thread(target=lambda: token.cancel("first"))
        first.start()
        time.sleep(0.05)  # let "first" enter cancel() and stall in set()
        token.cancel("second")
        first.join()

        assert token.cancelled
        assert token.reason == "first"

    def test_reason_stable_across_many_cancellers(self):
        token = CancellationToken()
        barrier = threading.Barrier(8)
        reasons = [f"canceller-{index}" for index in range(8)]

        def cancel(reason):
            barrier.wait()
            token.cancel(reason)

        threads = [threading.Thread(target=cancel, args=(r,)) for r in reasons]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winner = token.reason
        assert winner in reasons
        token.cancel("latecomer")
        assert token.reason == winner


class TestManifestDurability:
    """``write_manifest`` must fsync the temporary file *before* the atomic
    ``os.replace`` — otherwise a power loss can preserve the rename while
    dropping the payload, i.e. exactly the torn manifest the replace is
    there to prevent.  (Regression: no fsync was issued at all.)"""

    def test_payload_fsynced_before_replace(self, tmp_path, monkeypatch):
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def recording_fsync(fd):
            events.append(("fsync", fd))
            return real_fsync(fd)

        def recording_replace(src, dst):
            events.append(("replace", src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        monkeypatch.setattr(os, "replace", recording_replace)

        directory = str(tmp_path / "ckpt")
        write_manifest(directory, {"version": 1, "kind": "test"})

        kinds = [event[0] for event in events]
        assert "fsync" in kinds, "manifest payload never fsynced"
        replace_at = kinds.index("replace")
        assert "fsync" in kinds[:replace_at], (
            "manifest payload must be fsynced before os.replace, "
            f"got order {kinds}"
        )
        # The rename itself is made durable by a best-effort directory fsync.
        assert "fsync" in kinds[replace_at + 1 :]
        # And the manifest actually landed, reloadable.
        with open(os.path.join(directory, MANIFEST_NAME), "rb") as handle:
            assert pickle.load(handle)["kind"] == "test"
