"""Unit and property-based tests for the multiset (bag) primitive."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.petri import Multiset
from repro.petri.multiset import EMPTY_MULTISET

keys = st.sampled_from(["p1", "p2", "p3", "p4", "p5"])
multisets = st.dictionaries(keys, st.integers(min_value=0, max_value=5)).map(Multiset)


class TestConstruction:
    def test_from_mapping(self):
        bag = Multiset({"p1": 2, "p2": 1})
        assert bag["p1"] == 2
        assert bag["p2"] == 1

    def test_from_iterable_counts_occurrences(self):
        assert Multiset(["p1", "p1", "p2"]) == Multiset({"p1": 2, "p2": 1})

    def test_from_pairs(self):
        assert Multiset([("p1", 3)], pairs=True) == Multiset({"p1": 3})

    def test_zero_multiplicities_are_dropped(self):
        bag = Multiset({"p1": 0, "p2": 1})
        assert "p1" not in bag
        assert len(bag) == 1

    def test_missing_key_has_zero_multiplicity(self):
        assert Multiset({"p1": 1})["p9"] == 0

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Multiset({"p1": -1})

    def test_non_integer_multiplicity_rejected(self):
        with pytest.raises(TypeError):
            Multiset({"p1": 1.5})

    def test_boolean_multiplicity_rejected(self):
        with pytest.raises(TypeError):
            Multiset({"p1": True})

    def test_copy_constructor(self):
        bag = Multiset({"p1": 2})
        assert Multiset(bag) == bag


class TestQueries:
    def test_total_counts_multiplicity(self):
        assert Multiset({"p1": 2, "p2": 3}).total() == 5

    def test_support(self):
        assert Multiset({"p1": 2, "p2": 1}).support() == frozenset({"p1", "p2"})

    def test_is_empty(self):
        assert EMPTY_MULTISET.is_empty()
        assert not Multiset({"p1": 1}).is_empty()

    def test_covers_is_the_enabling_test(self):
        marking = Multiset({"p1": 2, "p2": 1})
        assert marking.covers(Multiset({"p1": 1}))
        assert marking.covers(Multiset({"p1": 2, "p2": 1}))
        assert not marking.covers(Multiset({"p1": 3}))
        assert not marking.covers(Multiset({"p3": 1}))

    def test_intersects(self):
        assert Multiset({"p1": 1}).intersects(Multiset({"p1": 2, "p2": 1}))
        assert not Multiset({"p1": 1}).intersects(Multiset({"p2": 1}))


class TestAlgebra:
    def test_add(self):
        assert Multiset({"p1": 1}) + Multiset({"p1": 2, "p2": 1}) == Multiset({"p1": 3, "p2": 1})

    def test_subtract(self):
        assert Multiset({"p1": 3, "p2": 1}) - Multiset({"p1": 1, "p2": 1}) == Multiset({"p1": 2})

    def test_subtract_below_zero_raises(self):
        with pytest.raises(ValueError):
            Multiset({"p1": 1}).subtract(Multiset({"p1": 2}))

    def test_saturating_subtract_clamps(self):
        result = Multiset({"p1": 1, "p2": 2}).saturating_subtract(Multiset({"p1": 5}))
        assert result == Multiset({"p2": 2})

    def test_scale(self):
        assert Multiset({"p1": 2}) * 3 == Multiset({"p1": 6})
        assert 0 * Multiset({"p1": 2}) == EMPTY_MULTISET

    def test_scale_negative_rejected(self):
        with pytest.raises(ValueError):
            Multiset({"p1": 1}).scale(-1)

    def test_union_is_max(self):
        assert Multiset({"p1": 1, "p2": 3}).union({"p1": 2}) == Multiset({"p1": 2, "p2": 3})

    def test_intersection_is_min(self):
        assert Multiset({"p1": 1, "p2": 3}).intersection({"p2": 2, "p3": 1}) == Multiset({"p2": 2})

    def test_ordering_operators(self):
        small = Multiset({"p1": 1})
        large = Multiset({"p1": 2, "p2": 1})
        assert small <= large
        assert large >= small
        assert small < large
        assert large > small
        assert not large <= small


class TestEqualityHash:
    def test_equal_bags_hash_equal(self):
        assert hash(Multiset({"p1": 2})) == hash(Multiset({"p1": 2}))

    def test_equality_with_plain_dict(self):
        assert Multiset({"p1": 2}) == {"p1": 2}
        assert Multiset({"p1": 2}) == {"p1": 2, "p2": 0}

    def test_repr_is_deterministic(self):
        assert repr(Multiset({"p2": 1, "p1": 2})) == repr(Multiset({"p1": 2, "p2": 1}))


class TestProperties:
    @given(multisets, multisets)
    def test_addition_commutes(self, left, right):
        assert left + right == right + left

    @given(multisets, multisets, multisets)
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(multisets, multisets)
    def test_subtraction_inverts_addition(self, a, b):
        assert (a + b) - b == a

    @given(multisets, multisets)
    def test_sum_covers_both_operands(self, a, b):
        total = a + b
        assert total.covers(a)
        assert total.covers(b)

    @given(multisets)
    def test_empty_is_identity(self, bag):
        assert bag + EMPTY_MULTISET == bag
        assert bag - EMPTY_MULTISET == bag

    @given(multisets, multisets)
    def test_union_covers_intersection(self, a, b):
        assert a.union(b).covers(a.intersection(b))

    @given(multisets)
    def test_total_is_sum_of_multiplicities(self, bag):
        assert bag.total() == sum(bag[key] for key in bag)

    @given(multisets, multisets)
    def test_covers_iff_saturating_subtract_empty(self, a, b):
        assert a.covers(b) == b.saturating_subtract(a).is_empty()
