"""Determinism and behavior tests for the content-addressed analysis cache.

The contract under test: an artifact served from the cache — in-memory,
from disk, or from a previous *process* — is **bit-identical** to a cold
build, for every bundled workload and every stage (timed/untimed/
coverability graphs, GSPN solutions, decision graphs, performance
expressions).  The comparisons reuse the exact-equality assertions of the
engine differential gate (:mod:`engine_diff`), so "cache hit" is held to
the same standard as "different engine".
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import time
from fractions import Fraction

import pytest

import repro
from engine_diff import (
    NUMERIC_WORKLOADS,
    TIMED_WORKLOAD_IDS,
    TIMED_WORKLOADS,
    UNBOUNDED_UNTIMED,
    WORKLOAD_IDS,
    assert_coverability_graphs_identical,
    assert_gspn_results_identical,
    assert_timed_graphs_identical,
    assert_untimed_graphs_identical,
    build_symbolic_timed_cached_roundtrip,
    build_timed_cached_roundtrip,
    symbolic_workload,
)
from repro.analysis import AnalysisSession, ArtifactCache, params_token
from repro.engine import NetTables, clear_shared_tables, tables_cache_stats
from repro.protocols import sliding_window_net


def window_net(frames=2):
    """The standing compressed-delay lossy window workload."""
    return sliding_window_net(
        frames,
        loss_probability=Fraction(1, 10),
        packet_delay=2,
        ack_delay=2,
        timeout=6,
    )


# ---------------------------------------------------------------------------
# Codec round trips (the bytes a disk hit reads), wired into the gate
# ---------------------------------------------------------------------------


class TestCodecDeterminism:
    @pytest.mark.parametrize("label,constructor", TIMED_WORKLOADS, ids=TIMED_WORKLOAD_IDS)
    def test_timed_workload(self, label, constructor):
        cold, warm = build_timed_cached_roundtrip(constructor())
        assert_timed_graphs_identical(cold, warm)

    def test_symbolic_paper_net(self):
        net, constraints = symbolic_workload()
        cold, warm = build_symbolic_timed_cached_roundtrip(net, constraints)
        assert_timed_graphs_identical(cold, warm)
        assert cold.constraint_usage() == warm.constraint_usage()


# ---------------------------------------------------------------------------
# ArtifactCache mechanics
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_params_token_is_canonical(self):
        assert params_token(None) == ""
        assert params_token({"b": 2, "a": 1}) == params_token({"a": 1, "b": 2})
        assert params_token({"p": Fraction(1, 10)}) == "p=1/10"
        assert params_token({"rates": {"t2": 2.0, "t1": 1.0}}) == params_token(
            {"rates": {"t1": 1.0, "t2": 2.0}}
        )
        assert params_token({"a": 1}) != params_token({"a": 2})

    def test_key_for_separates_stage_and_params(self):
        net = window_net()
        key = ArtifactCache.key_for(net, "timed-graph", {"max_states": 100})
        assert key.startswith("tpn1:")
        assert key != ArtifactCache.key_for(net, "timed-graph", {"max_states": 200})
        assert key != ArtifactCache.key_for(net, "untimed-graph", {"max_states": 100})

    def test_memory_tier_lru_eviction(self):
        cache = ArtifactCache(memory_limit=2)
        for index in range(3):
            cache.fetch(f"k{index}", stage="s", build=lambda index=index: index)
        stats = cache.stats()
        assert stats["memory_entries"] == 2
        assert stats["evictions"] == 1
        # k0 was evicted (memory-only cache: rebuild), k2 still resident.
        _artifact, tier = cache.fetch("k2", stage="s", build=lambda: -1)
        assert tier == "memory"
        _artifact, tier = cache.fetch("k0", stage="s", build=lambda: 0)
        assert tier == "built"

    def test_disk_tier_round_trip_and_clear(self, tmp_path):
        directory = str(tmp_path / "cache")
        with ArtifactCache(directory) as cache:
            value, tier = cache.fetch("k", stage="s", build=lambda: {"x": 1})
            assert tier == "built" and value == {"x": 1}
        with ArtifactCache(directory) as cache:
            value, tier = cache.fetch("k", stage="s", build=lambda: pytest.fail("rebuilt"))
            assert tier == "disk" and value == {"x": 1}
            assert cache.stats()["disk_entries"] == 1
            assert cache.clear() == 1
            assert cache.stats()["disk_entries"] == 0

    def test_rejects_bad_memory_limit(self):
        with pytest.raises(ValueError):
            ArtifactCache(memory_limit=0)


# ---------------------------------------------------------------------------
# AnalysisSession: every stage, warm == cold, for every bundled workload
# ---------------------------------------------------------------------------


class TestAnalysisSession:
    @pytest.mark.parametrize("label,constructor", TIMED_WORKLOADS, ids=TIMED_WORKLOAD_IDS)
    def test_timed_stage_disk_hit_is_bit_identical(self, label, constructor, tmp_path):
        directory = str(tmp_path / "cache")
        with AnalysisSession(cache_dir=directory) as session:
            cold = session.timed_graph(constructor())
            assert session.stage_outcomes["timed-graph"] == {"built": 1}
        with AnalysisSession(cache_dir=directory) as session:
            warm = session.timed_graph(constructor())
            assert session.stage_outcomes["timed-graph"] == {"disk": 1}
        assert_timed_graphs_identical(cold, warm)

    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_untimed_and_coverability_stages(self, label, constructor, tmp_path):
        directory = str(tmp_path / "cache")
        bounded = label not in UNBOUNDED_UNTIMED
        with AnalysisSession(cache_dir=directory) as session:
            cold_cover = session.coverability_graph(constructor())
            if bounded:
                cold = session.untimed_graph(constructor())
        with AnalysisSession(cache_dir=directory) as session:
            warm_cover = session.coverability_graph(constructor())
            assert session.stage_outcomes["coverability-graph"] == {"disk": 1}
            if bounded:
                warm = session.untimed_graph(constructor())
                assert session.stage_outcomes["untimed-graph"] == {"disk": 1}
        assert_coverability_graphs_identical(cold_cover, warm_cover)
        if bounded:
            assert_untimed_graphs_identical(cold, warm)

    def test_gspn_stage(self, tmp_path):
        directory = str(tmp_path / "cache")
        net = window_net()
        with AnalysisSession(cache_dir=directory) as session:
            cold = session.gspn_solution(net)
        with AnalysisSession(cache_dir=directory) as session:
            warm = session.gspn_solution(net)
            assert session.stage_outcomes["gspn-solution"] == {"disk": 1}
            # Different rates are a different artifact, not a stale hit.
            other = session.gspn_solution(net, rates={name: 1.0 for name in net.transition_order})
        assert_gspn_results_identical(cold, warm)
        assert other.throughput != warm.throughput

    def test_decision_and_performance_stages(self, tmp_path):
        directory = str(tmp_path / "cache")
        net = window_net()
        with AnalysisSession(cache_dir=directory) as session:
            cold_decision = session.decision(net)
            cold_performance = session.performance(net)
            # Both stages share the cached timed graph instance.
            graph = session.timed_graph(net)
            assert cold_decision.trg is graph
            assert cold_performance.reachability is graph
        with AnalysisSession(cache_dir=directory) as session:
            warm_decision = session.decision(net)
            warm_performance = session.performance(net)
            assert session.stage_outcomes["decision-graph"] == {"disk": 1}
            assert session.stage_outcomes["performance"] == {"disk": 1}
            warm_graph = session.timed_graph(net)
            assert warm_decision.trg is warm_graph
            assert warm_performance.reachability is warm_graph
        assert warm_decision.edge_table() == cold_decision.edge_table()
        assert warm_performance.cycle_time().value == cold_performance.cycle_time().value
        for name in net.transition_order:
            assert (
                warm_performance.throughput(name).value
                == cold_performance.throughput(name).value
            )

    def test_symbolic_performance_stage(self, tmp_path):
        directory = str(tmp_path / "cache")
        net, constraints = symbolic_workload()
        with AnalysisSession(cache_dir=directory) as session:
            cold = session.performance(net, constraints)
        with AnalysisSession(cache_dir=directory) as session:
            warm = session.performance(net, constraints)
            assert session.stage_outcomes["performance"] == {"disk": 1}
        assert str(warm.throughput("t2").value) == str(cold.throughput("t2").value)

    def test_memory_hits_return_same_object(self):
        with AnalysisSession() as session:  # memory-only
            net = window_net()
            first = session.timed_graph(net)
            second = session.timed_graph(window_net())  # equal net, new object
            assert first is second
            assert session.stage_outcomes["timed-graph"] == {"built": 1, "memory": 1}

    def test_cache_report_unifies_every_surface(self):
        with AnalysisSession() as session:
            session.timed_graph(window_net())
            report = session.cache_report()
        assert set(report) == {"artifacts", "stages", "tables", "branch", "intern"}
        assert report["artifacts"]["misses"] == 1
        assert report["stages"]["timed-graph"] == {"built": 1}
        assert {"hits", "misses", "evictions"} <= set(report["tables"])


class TestNetTablesSharing:
    def test_structurally_equal_nets_share_tables(self):
        clear_shared_tables()
        first, second = window_net(), window_net()
        assert first is not second
        assert NetTables.of(first) is NetTables.of(second)
        stats = tables_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1


# ---------------------------------------------------------------------------
# Process restart: a fresh interpreter must hit disk, bit-identically
# ---------------------------------------------------------------------------

_RESTART_SCRIPT = """\
import hashlib, sys
from fractions import Fraction
from repro.analysis import AnalysisSession
from repro.protocols import sliding_window_net

net = sliding_window_net(
    2, loss_probability=Fraction(1, 10), packet_delay=2, ack_delay=2, timeout=6
)
with AnalysisSession(cache_dir=sys.argv[1]) as session:
    graph = session.timed_graph(net)
    result = session.gspn_solution(net)
    performance = session.performance(net)
    tier = sys.argv[2]
    for stage in ("timed-graph", "gspn-solution", "performance"):
        # The performance stage re-fetches the timed graph (a memory hit),
        # so assert on the tier that produced each artifact, not the counts.
        outcomes = session.stage_outcomes[stage]
        assert tier in outcomes, (stage, session.stage_outcomes)
        assert "built" not in outcomes or tier == "built", (stage, session.stage_outcomes)
payload = repr((
    graph.state_table(),
    graph.edge_table(),
    sorted(result.throughput.items()),
    str(performance.cycle_time().value),
))
print(hashlib.sha256(payload.encode()).hexdigest())
"""


def test_disk_cache_survives_process_restart(tmp_path):
    """Cold in one interpreter, warm in another: same bytes, same results."""
    directory = str(tmp_path / "cache")
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def run(tier):
        return subprocess.run(
            [sys.executable, "-c", _RESTART_SCRIPT, directory, tier],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.strip()

    cold_digest = run("built")
    warm_digest = run("disk")
    assert cold_digest == warm_digest


# ---------------------------------------------------------------------------
# Acceptance: warm re-analysis of the window-4 workload is >= 10x faster
# ---------------------------------------------------------------------------


def test_warm_cache_window4_acceptance(tmp_path):
    """Graph + throughput of ``sliding_window_net(4, lossy)``: a warm-cache
    re-analysis (fresh session on a populated disk cache, i.e. after a
    process restart) must be at least 10x faster than the cold build and
    bit-identical to it."""
    directory = str(tmp_path / "cache")
    net = window_net(4)

    # Earlier tests leave large object graphs behind; collect once and pause
    # the collector so both measurements see the same allocator behavior.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        with AnalysisSession(cache_dir=directory) as session:
            cold_graph = session.timed_graph(net)
            cold_result = session.gspn_solution(net)
        cold_seconds = time.perf_counter() - start

        best = None
        for _ in range(3):
            start = time.perf_counter()
            with AnalysisSession(cache_dir=directory) as session:
                warm_graph = session.timed_graph(net)
                warm_result = session.gspn_solution(net)
                outcomes = dict(session.stage_outcomes)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None or elapsed < best else best
    finally:
        gc.enable()
    assert outcomes == {"timed-graph": {"disk": 1}, "gspn-solution": {"disk": 1}}

    assert_timed_graphs_identical(cold_graph, warm_graph)
    assert_gspn_results_identical(cold_result, warm_result)
    speedup = cold_seconds / best
    assert speedup >= 10.0, (
        f"warm re-analysis only {speedup:.1f}x faster than cold "
        f"({cold_seconds:.2f}s -> {best:.2f}s)"
    )


class TestMaintenanceUnderContention:
    """``stats()``/``clear()`` must ride the same bounded-backoff retry as
    the fetch paths: a transient ``database is locked`` from a concurrent
    writer sharing the cache directory is absorbed, and an exhausted retry
    budget surfaces as a typed ``StoreError`` — never as a raw
    ``sqlite3.OperationalError``.  (Regression: both methods used to issue
    their SQL outside ``locked_retry``.)"""

    @staticmethod
    def _populated_cache(tmp_path):
        from repro.engine import faults  # noqa: F401 - symmetry with the tests

        cache = ArtifactCache(str(tmp_path / "cache"))
        net = window_net(2)
        cache.fetch(
            cache.key_for(net, "stage-a"), stage="stage-a", build=lambda: {"a": 1}
        )
        return cache

    def test_stats_absorbs_transient_locks(self, tmp_path):
        from repro.engine import faults
        from repro.engine.faults import FaultPlan

        with self._populated_cache(tmp_path) as cache:
            with faults.inject(FaultPlan(locked_writes=2)):
                stats = cache.stats()
            assert stats["disk_entries"] == 1

    def test_stats_exhausted_retries_raise_typed_error(self, tmp_path):
        from repro.engine import faults
        from repro.engine.faults import FaultPlan
        from repro.engine.store import RETRY_ATTEMPTS
        from repro.exceptions import StoreError

        with self._populated_cache(tmp_path) as cache:
            with faults.inject(FaultPlan(locked_writes=RETRY_ATTEMPTS * 2)):
                with pytest.raises(StoreError):
                    cache.stats()

    def test_clear_absorbs_transient_locks(self, tmp_path):
        from repro.engine import faults
        from repro.engine.faults import FaultPlan

        with self._populated_cache(tmp_path) as cache:
            with faults.inject(FaultPlan(locked_writes=2)):
                removed = cache.clear()
            assert removed == 1
            assert cache.stats()["disk_entries"] == 0

    def test_clear_exhausted_retries_raise_typed_error(self, tmp_path):
        from repro.engine import faults
        from repro.engine.faults import FaultPlan
        from repro.engine.store import RETRY_ATTEMPTS
        from repro.exceptions import StoreError

        with self._populated_cache(tmp_path) as cache:
            with faults.inject(FaultPlan(locked_writes=RETRY_ATTEMPTS * 2)):
                with pytest.raises(StoreError):
                    cache.clear()
            # The entry survived the failed wipe; a later clear succeeds.
            assert cache.clear() == 1
