"""End-to-end reproduction of the paper's results (the "does it all hang together" test).

Each test corresponds to one experiment of DESIGN.md's experiment index and
asserts the library regenerates the paper's numbers exactly (they are exact
rational computations, so equality — not approximation — is the bar).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import (
    PAPER_THROUGHPUT,
    PerformanceAnalysis,
    paper_bindings,
    simple_protocol_net,
    simple_protocol_symbolic,
)
from repro.protocols import (
    PAPER_DECISION_DELAYS,
    PAPER_RET_MILESTONES,
    PAPER_STATE_COUNT,
)
from repro.simulation import simulate
from repro.symbolic import Polynomial, RatFunc, evaluate_value


class TestEndToEndPaperReproduction:
    def test_e1_model_inventory(self, paper_net):
        """Figure 1: eight places, nine transitions, three probabilistic conflicts."""
        assert len(paper_net.places) == 8
        assert len(paper_net.transitions) == 9
        choices = [cs for cs in paper_net.conflict_sets if cs.has_choice]
        assert len(choices) == 3

    def test_e4_figure4_timed_reachability_graph(self, paper_trg):
        assert paper_trg.state_count == PAPER_STATE_COUNT
        assert len(paper_trg.decision_nodes()) == 2
        observed_ret = {
            value
            for node in paper_trg.nodes
            for value in node.state.remaining_enabling.values()
        }
        assert set(PAPER_RET_MILESTONES) <= observed_ret

    def test_e5_figure5_decision_graph(self, paper_decision):
        delays = sorted(edge.delay for edge in paper_decision.edges)
        assert delays == sorted(PAPER_DECISION_DELAYS.values())
        probabilities = sorted(edge.probability for edge in paper_decision.edges)
        assert probabilities == [Fraction(1, 20), Fraction(1, 20), Fraction(19, 20), Fraction(19, 20)]

    def test_e6_figure6_symbolic_graph_specializes_to_figure4(self, symbolic_analysis, paper_trg):
        assert symbolic_analysis.reachability.state_count == paper_trg.state_count
        bindings = paper_bindings()
        symbolic_total = sum(
            evaluate_value(edge.delay, bindings) for edge in symbolic_analysis.reachability.advance_edges()
        )
        numeric_total = sum(edge.delay for edge in paper_trg.advance_edges())
        assert symbolic_total == numeric_total

    def test_e8_symbolic_decision_edges_match_paper(self, symbolic_analysis):
        """Figure 8: the four symbolic edge delays of the decision graph."""
        bindings = paper_bindings()
        values = sorted(
            evaluate_value(edge.delay, bindings) for edge in symbolic_analysis.decision.edges
        )
        assert values == sorted(PAPER_DECISION_DELAYS.values())

    def test_e9_throughput_expression(self, paper_analysis, symbolic_analysis):
        """Section 4's closing result, in all three forms the paper gives it."""
        # numeric pipeline
        assert paper_analysis.throughput("t2").value == PAPER_THROUGHPUT
        # symbolic pipeline specialized at the paper's parameters
        symbolic_value = symbolic_analysis.throughput("t2").evaluate(paper_bindings())
        assert symbolic_value == PAPER_THROUGHPUT
        # the paper's printed closed form: 18.05 / (1.95(E3+F3) + 20 F1 + 18.05(F2+F4+F6+F7+F8))
        closed_form = Fraction("18.05") / (
            Fraction("1.95") * (1000 + 1)
            + 20 * 1
            + Fraction("18.05") * (1 + Fraction("106.7") + Fraction("13.5") + Fraction("13.5") + Fraction("106.7"))
        )
        assert closed_form == PAPER_THROUGHPUT

    def test_e9_symbolic_expression_equals_paper_closed_form(self, symbolic_analysis, symbolic_protocol):
        """With the 5%-loss frequencies substituted, the symbolic throughput equals
        the paper's printed expression as a *function* of the remaining time symbols."""
        _net, _constraints, symbols = symbolic_protocol
        throughput = symbolic_analysis.throughput("t2").value
        with_frequencies = throughput.substitute(
            {
                symbols["f4"]: Fraction(19, 20),
                symbols["f5"]: Fraction(1, 20),
                symbols["f8"]: Fraction(19, 20),
                symbols["f9"]: Fraction(1, 20),
            }
        )
        E3, F1, F2, F3, F4, F6, F7, F8 = (
            Polynomial.from_symbol(symbols[name]) for name in ("E3", "F1", "F2", "F3", "F4", "F6", "F7", "F8")
        )
        paper_expression = RatFunc(
            Polynomial.constant(Fraction("18.05")),
            (E3 + F3).scale(Fraction("1.95"))
            + F1.scale(20)
            + (F2 + F4 + F6 + F7 + F8).scale(Fraction("18.05")),
        )
        assert with_frequencies == paper_expression

    def test_e10_cross_method_agreement(self, paper_analysis):
        """Analytic, embedded-Markov-chain and simulated throughput agree."""
        analytic = paper_analysis.throughput("t2").value
        markov = paper_analysis.embedded_chain().throughput(paper_analysis.decision, "t2")
        assert markov == analytic
        result = simulate(simple_protocol_net(), horizon=150_000, seed=2024)
        assert result.throughput("t2") == pytest.approx(float(analytic), rel=0.15)

    def test_e11_loss_sweep_shape(self):
        """Throughput decreases monotonically with the loss probability."""
        values = []
        for loss in (Fraction(0), Fraction(1, 20), Fraction(1, 10), Fraction(1, 4)):
            net = simple_protocol_net(packet_loss_probability=loss, ack_loss_probability=loss)
            values.append(PerformanceAnalysis(net).throughput("t2").value)
        assert values == sorted(values, reverse=True)

    def test_e12_timeout_sweep_validity_region(self, symbolic_analysis, symbolic_protocol):
        """The symbolic expression is valid for every timeout satisfying constraint 1,
        and matches a fresh numeric analysis at several such timeouts."""
        _net, _constraints, symbols = symbolic_protocol
        for timeout in (Fraction(300), Fraction(1000), Fraction(5000)):
            bindings = paper_bindings()
            bindings[symbols["E3"]] = timeout
            symbolic_value = symbolic_analysis.throughput("t2").evaluate(bindings)
            numeric_value = PerformanceAnalysis(simple_protocol_net(timeout=timeout)).throughput("t2").value
            assert symbolic_value == numeric_value

    def test_timeout_below_round_trip_violates_the_model_restriction(self):
        """Outside the constraint-1 region the expression no longer applies:
        with a timeout shorter than the packet delay the sender retransmits
        while the previous copy is still in the medium, the medium transition
        would have to fire twice simultaneously, and the library reports the
        violation of the paper's single-firing restriction explicitly."""
        from repro.exceptions import SafenessViolationError

        net = simple_protocol_net(timeout=100)  # round trip is ~228 ms
        with pytest.raises(SafenessViolationError):
            PerformanceAnalysis(net)
