"""Cross-method validation of the generalized performance pipeline.

For every catalog workload the decision-graph collapse supports, the same
throughput is computed up to four independent ways and the methods must
agree:

1. **numeric decision graph** — the generalized (cycle-folding) collapse
   with exact rational arithmetic; the reference value,
2. **symbolic pipeline, numerically bound** — the *symbolic* construction
   (LinExpr clocks, RatFunc probabilities, Fourier–Motzkin comparator) run
   on the same net and evaluated to numbers; must match **exactly**,
3. **discrete-event simulation** — the paper's deterministic-delay
   semantics sampled with fixed seeds; the analytic value must fall within
   the batch-means confidence interval (or a small relative tolerance),
4. **GSPN steady-state solver** — Molloy-style exponential delays of equal
   mean.  For delay-insensitive workloads (single-token rings; the lossless
   sliding window, whose slots have no real fork/join waiting) the CTMC
   reproduces the deterministic value almost exactly; synchronization-heavy
   workloads drift by a documented, bounded amount, and the exponential leg
   is then validated against *exponential-delay simulation* instead, which
   must agree with the CTMC tightly.

The acceptance headline of the generalized collapse — lossless
``sliding_window_net(4)`` and ``selective_repeat_net()`` — gets its own
test: closed form, GSPN and simulation all line up.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

import pytest

from repro.performance import PerformanceAnalysis, PerformanceMetrics
from repro.protocols import (
    model_catalog,
    selective_repeat_net,
    sliding_window_net,
    sliding_window_symbolic,
)
from repro.reachability import (
    decision_graph,
    supports_decision_collapse,
    symbolic_timed_reachability_graph,
)
from repro.simulation import simulate
from repro.simulation.distributions import Exponential
from repro.stochastic import GSPNAnalysis

SEED = 20260728
HORIZON_MS = 60_000.0


@dataclass(frozen=True)
class CrossCase:
    """One workload of the cross-method matrix.

    ``gspn_rel_tol`` is the documented bound on the exponential
    approximation's drift (``None``: the GSPN leg is skipped — the model's
    marking graph is unbounded without truncation, and truncated CTMCs are
    not comparable); near-zero values mark delay-insensitive workloads where
    the CTMC must reproduce the deterministic number essentially exactly.
    """

    name: str
    build: Callable
    transition: str
    gspn_rel_tol: Optional[float]


CASES = [
    CrossCase("simple-protocol", model_catalog()["simple-protocol"], "t2", None),
    CrossCase("alternating-bit", model_catalog()["alternating-bit"], "accept0", None),
    CrossCase("token-ring", model_catalog()["token-ring"], "transmit_0", 1e-9),
    CrossCase(
        "producer-consumer", model_catalog()["producer-consumer"], "finish_consume", 0.25
    ),
    CrossCase("sliding-window-2", lambda: sliding_window_net(2), "w0_ack_return", 1e-9),
    CrossCase("sliding-window-3", lambda: sliding_window_net(3), "w0_ack_return", 1e-9),
    CrossCase("go-back-n-2", model_catalog()["go-back-n"], "g0_ack_return", 0.25),
    CrossCase(
        "selective-repeat-2", model_catalog()["selective-repeat"], "sr0_ack_return", 0.25
    ),
    CrossCase(
        "pipelined-stop-and-wait",
        model_catalog()["pipelined-stop-and-wait"],
        "c0_send",
        None,
    ),
]
IDS = [case.name for case in CASES]


@pytest.fixture(scope="module")
def analyses():
    """One PerformanceAnalysis per case, built once for the whole module."""
    return {case.name: PerformanceAnalysis(case.build()) for case in CASES}


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_collapse_supported(case, analyses):
    support = supports_decision_collapse(analyses[case.name].reachability)
    assert support, f"{case.name}: {support.reason}"


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_symbolic_pipeline_matches_numeric_exactly(case, analyses):
    """Method 2 vs method 1: same net through the symbolic machinery.

    The symbolic construction exercises a completely different code path —
    LinExpr clock arithmetic, the Fourier–Motzkin comparator, RatFunc
    branch probabilities, and the symbolic variants of folding, absorption
    and traversal solving — so exact agreement after numeric evaluation is
    a strong whole-stack differential check.
    """
    analysis = analyses[case.name]
    trg = symbolic_timed_reachability_graph(case.build(), ())
    metrics = PerformanceMetrics(decision_graph(trg))
    numeric_value = analysis.metrics.throughput(case.transition)
    symbolic_value = metrics.throughput(case.transition).evaluate({})
    assert symbolic_value == numeric_value
    assert metrics.cycle_time().evaluate({}) == analysis.metrics.cycle_time()


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_simulation_matches_analytic(case, analyses):
    """Method 3 vs method 1: deterministic-delay discrete-event simulation."""
    analysis = analyses[case.name]
    analytic = float(analysis.metrics.throughput(case.transition))
    result = simulate(case.build(), HORIZON_MS, seed=SEED)
    assert not result.deadlocked
    interval = result.throughput_interval(case.transition)
    simulated = result.throughput(case.transition)
    assert interval.contains(analytic) or abs(simulated - analytic) <= 0.02 * analytic, (
        f"{case.name}: simulated {simulated:.6f} vs analytic {analytic:.6f} "
        f"(interval ±{interval.half_width:.6f})"
    )


@pytest.mark.parametrize(
    "case", [case for case in CASES if case.gspn_rel_tol is not None], ids=[
        case.name for case in CASES if case.gspn_rel_tol is not None
    ]
)
def test_gspn_within_documented_tolerance(case, analyses):
    """Method 4 vs method 1: the exponential-delay CTMC baseline."""
    analytic = float(analyses[case.name].metrics.throughput(case.transition))
    exponential = GSPNAnalysis(case.build()).solve().throughput[case.transition]
    drift = abs(exponential - analytic) / analytic
    assert drift <= case.gspn_rel_tol, (
        f"{case.name}: GSPN {exponential:.6f} vs analytic {analytic:.6f} "
        f"(drift {drift:.3f} > {case.gspn_rel_tol})"
    )


@pytest.mark.parametrize(
    "name", ["sliding-window-2", "selective-repeat-2", "producer-consumer"]
)
def test_exponential_simulation_matches_gspn(name):
    """The GSPN solver against simulation under the *same* stochastic
    semantics: every timed transition's delay replaced by an exponential of
    equal mean.  This closes the loop for the synchronization-heavy
    workloads whose CTMC legitimately drifts from the deterministic value.
    """
    case = next(c for c in CASES if c.name == name)
    net = case.build()
    distributions = {}
    for transition_name in net.transition_order:
        mean = net.transition(transition_name).firing_time
        if Fraction(mean) > 0:
            distributions[transition_name] = Exponential(mean)
    solver = GSPNAnalysis(net).solve().throughput[case.transition]
    result = simulate(net, HORIZON_MS, seed=SEED, firing_distributions=distributions)
    interval = result.throughput_interval(case.transition)
    simulated = result.throughput(case.transition)
    assert interval.contains(solver) or abs(simulated - solver) <= 0.05 * solver, (
        f"{name}: exponential simulation {simulated:.6f} vs GSPN {solver:.6f} "
        f"(interval ±{interval.half_width:.6f})"
    )


class TestAcceptanceHeadline:
    """The ISSUE's acceptance criteria, spelled out."""

    def test_window_4_closed_form_confirmed_by_gspn_and_simulation(self):
        net = sliding_window_net(4)
        analysis = PerformanceAnalysis(net)
        # 24 slot-phase orderings, all folded; closed form 1/10 per slot.
        assert analysis.terminal_class_count == 24
        assert len(analysis.folded_cycles) == 24
        throughput = analysis.throughput("w0_ack_return").value
        assert throughput == Fraction(1, 10)

        gspn = GSPNAnalysis(net).solve().throughput["w0_ack_return"]
        assert abs(gspn - float(throughput)) <= 1e-9

        result = simulate(net, HORIZON_MS, seed=SEED)
        interval = result.throughput_interval("w0_ack_return")
        # The committed cycle is deterministic, so the interval can collapse
        # to a point; allow the window-fill transient (a handful of events
        # over the horizon) around it.
        simulated = result.throughput("w0_ack_return")
        assert abs(simulated - float(throughput)) <= interval.half_width + 1e-3 * float(throughput)

    def test_selective_repeat_closed_form_confirmed(self):
        net = selective_repeat_net()
        analysis = PerformanceAnalysis(net)
        throughput = analysis.throughput("sr0_release").value
        assert throughput == Fraction(1, 10)
        result = simulate(net, HORIZON_MS, seed=SEED)
        interval = result.throughput_interval("sr0_release")
        simulated = result.throughput("sr0_release")
        assert abs(simulated - float(throughput)) <= interval.half_width + 1e-3 * float(throughput)

    def test_symbolic_window_closed_form(self):
        """The generalized collapse's symbolic selling point: one expression
        valid for all constraint-consistent delays."""
        net, constraints, symbols = sliding_window_symbolic(2)
        analysis = PerformanceAnalysis(net, constraints)
        throughput = analysis.throughput("w0_ack_return").value
        # throughput = 1 / (send + d + receive + a) = 1 / (a + d + 2)
        assert str(throughput) == "1 / (a + d + 2)"
        bound = throughput.evaluate({symbols["d"]: 4, symbols["a"]: 4})
        assert bound == Fraction(1, 10)
        # A different operating point, cross-checked against the numeric
        # pipeline re-run at those delays.
        rebound = PerformanceAnalysis(
            sliding_window_net(2, packet_delay=7, ack_delay=3)
        ).throughput("w0_ack_return").value
        assert throughput.evaluate({symbols["d"]: 7, symbols["a"]: 3}) == rebound


class TestSymbolicFoldedReporting:
    """Reporting/sensitivity surface over the symbolic folded closed forms."""

    @pytest.fixture(scope="class")
    def symbolic_window(self):
        net, constraints, symbols = sliding_window_symbolic(2)
        return PerformanceAnalysis(net, constraints), symbols

    def test_report_bundle_evaluates(self, symbolic_window):
        analysis, symbols = symbolic_window
        report = analysis.report(["w0_ack_return"])
        bound = report.evaluate({symbols["d"]: 4, symbols["a"]: 4})
        assert bound.cycle_time == Fraction(10)
        assert bound.throughput["w0_ack_return"] == Fraction(1, 10)
        assert bound.utilization["w0_ack_return"] == Fraction(2, 5)
        assert sum(bound.edge_time_shares.values()) == bound.cycle_time

    def test_expression_surface(self, symbolic_window):
        analysis, symbols = symbolic_window
        expression = analysis.cycle_time()
        assert expression.is_symbolic
        assert {symbol.name for symbol in expression.symbols()} == {"a", "d"}
        partial = expression.substitute({symbols["d"]: 4})
        assert partial.is_symbolic and "a" in str(partial.value)
        assert partial.evaluate({symbols["a"]: 4}) == Fraction(10)
        assert expression.evaluate_float({symbols["d"]: 4, symbols["a"]: 4}) == 10.0
        assert "cycle_time" in expression.render()
        shares = analysis.edge_time_shares()
        assert set(shares) == {edge.index for edge in analysis.decision.edges}

    def test_sensitivity_profile_of_folded_throughput(self, symbolic_window):
        from repro.performance import finite_difference, sensitivity_profile

        analysis, symbols = symbolic_window
        throughput = analysis.throughput("w0_ack_return").value
        point = {symbols["d"]: Fraction(4), symbols["a"]: Fraction(4)}
        profile = sensitivity_profile(throughput, point)
        assert set(profile) == {symbols["d"], symbols["a"]}
        for entry in profile.values():
            assert entry.value == Fraction(1, 10)
            assert entry.derivative == Fraction(-1, 100)
            assert entry.elasticity == Fraction(-2, 5)
        # Exact derivative vs central finite difference of the bound pipeline.
        approx = finite_difference(
            lambda d: throughput.evaluate({symbols["d"]: d, symbols["a"]: Fraction(4)}),
            Fraction(4),
        )
        exact = profile[symbols["d"]].derivative
        assert abs(approx - exact) < Fraction(1, 10_000)

    def test_specialized_rebuild_matches(self, symbolic_window):
        from repro.performance import analyze

        analysis, symbols = symbolic_window
        specialized = analysis.specialized({symbols["d"]: 4, symbols["a"]: 4})
        assert not specialized.is_symbolic
        assert specialized.terminal_class_count == analysis.terminal_class_count
        assert specialized.throughput("w0_ack_return").value == Fraction(1, 10)
        assert analysis.evaluate_throughput(
            "w0_ack_return", {symbols["d"]: 4, symbols["a"]: 4}
        ) == Fraction(1, 10)
        # The one-call wrapper routes through the same generalized pipeline.
        assert analyze(sliding_window_net(2)).cycle_time().value == Fraction(10)
        assert "folded" in repr(specialized.decision)
