"""Property-style randomized differential tests for the compiled engine.

Small random nets (seeded, via :class:`NetBuilder`) are pushed through the
compiled, batched and reference backends of every untimed builder; all must
agree exactly — including on *failure*: a net that is unbounded for the
reference enumeration must be unbounded for the other engines at the same
bound.

On top of the differential check, bounded graphs are validated against the
structure theory of :mod:`repro.petri.invariants`: every P-invariant's
weighted token count is conserved across every reachable marking (token
conservation is what ``y·C = 0`` *means*), and coverability must classify
the net bounded exactly when the enumeration closed.  A separate property
check pins the incremental enabled-set maintenance of
:meth:`NetTables.derive_enabled` to a full from-scratch re-scan of the
transition list on every edge of the graph.
"""

from __future__ import annotations

import random

import pytest

from engine_diff import (
    assert_coverability_graphs_identical,
    assert_gspn_explorations_identical,
    assert_untimed_graphs_identical,
    build_coverability_pair,
    build_gspn_batched,
    build_gspn_pair,
    build_untimed_batched,
    build_untimed_pair,
)
from repro.engine import NetTables
from repro.exceptions import UnboundedNetError
from repro.petri import coverability_graph, place_invariants, reachability_graph
from repro.petri.builder import NetBuilder
from repro.stochastic import GSPNAnalysis

#: Enough seeds to hit sources/sinks, conflicts, weights > 1, immediate
#: transitions and unbounded token pumps, while staying fast.
SEEDS = list(range(40))

MAX_STATES = 2_000
MAX_NODES = 2_000


def random_net(seed: int):
    """A small seeded random net.

    Every transition consumes at least one token (no always-enabled
    sources, which would make *every* net trivially unbounded), but output
    bags may outweigh inputs, so a fair share of the nets are unbounded —
    exercising the failure paths as well as the graphs.
    """
    rng = random.Random(seed)
    builder = NetBuilder(f"random-{seed}")
    place_count = rng.randint(3, 7)
    places = [f"p{i}" for i in range(place_count)]
    for place in places:
        builder.place(place, tokens=rng.choice([0, 0, 1, 1, 2]))
    transition_count = rng.randint(3, 8)
    for t in range(transition_count):
        inputs = {
            place: rng.choice([1, 1, 1, 2])
            for place in rng.sample(places, rng.randint(1, min(3, place_count)))
        }
        outputs = {
            place: rng.choice([1, 1, 2])
            for place in rng.sample(places, rng.randint(0, min(3, place_count)))
        }
        builder.transition(
            f"t{t}",
            inputs=inputs,
            outputs=outputs,
            enabling_time=rng.choice([0, 0, 1, 2]),
            firing_time=rng.choice([0, 1, 2, 3]),
            frequency=rng.randint(1, 3),
        )
    return builder.build()


def assert_p_invariants_conserved(net, graph):
    """Every P-invariant's weighted token count is constant over the graph."""
    invariants = place_invariants(net)
    initial = net.initial_marking.to_dict()
    for invariant in invariants:
        conserved = invariant.weighted_sum(initial)
        for marking in graph.markings:
            assert invariant.weighted_sum(marking.to_dict()) == conserved, (
                f"P-invariant {invariant!r} violated in {marking!r}"
            )


class TestRandomizedUntimedDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_reachability_agrees(self, seed):
        net = random_net(seed)
        try:
            reference = reachability_graph(net, max_states=MAX_STATES, engine="reference")
        except UnboundedNetError:
            with pytest.raises(UnboundedNetError):
                reachability_graph(net, max_states=MAX_STATES, engine="compiled")
            with pytest.raises(UnboundedNetError):
                build_untimed_batched(net, max_states=MAX_STATES)
            return
        compiled = reachability_graph(net, max_states=MAX_STATES, engine="compiled")
        assert_untimed_graphs_identical(compiled, reference)
        batched = build_untimed_batched(net, max_states=MAX_STATES)
        assert_untimed_graphs_identical(batched, reference)
        assert_p_invariants_conserved(net, compiled)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_coverability_agrees(self, seed):
        net = random_net(seed)
        try:
            compiled, reference = build_coverability_pair(net, max_nodes=MAX_NODES)
        except UnboundedNetError:
            # Pathological blow-up: both engines must hit the same valve.
            for engine in ("compiled", "reference"):
                with pytest.raises(UnboundedNetError):
                    coverability_graph(net, max_nodes=MAX_NODES, engine=engine)
            return
        assert_coverability_graphs_identical(compiled, reference)
        # Karp–Miller decides boundedness; it must agree with enumeration.
        if compiled.is_bounded():
            graph = reachability_graph(net, max_states=MAX_STATES)
            assert graph.state_count <= MAX_STATES
            assert_p_invariants_conserved(net, graph)
        else:
            with pytest.raises(UnboundedNetError):
                reachability_graph(net, max_states=MAX_STATES)


class TestRandomizedGSPNDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_marking_graph_agrees(self, seed):
        net = random_net(seed)
        try:
            reference = GSPNAnalysis(net, max_states=MAX_STATES, engine="reference")
            reference_exploration = reference._explore()
        except UnboundedNetError:
            with pytest.raises(UnboundedNetError):
                GSPNAnalysis(net, max_states=MAX_STATES, engine="compiled")._explore()
            with pytest.raises(UnboundedNetError):
                build_gspn_batched(net, max_states=MAX_STATES)._explore()
            return
        compiled = GSPNAnalysis(net, max_states=MAX_STATES, engine="compiled")
        assert compiled._explore() == reference_exploration
        batched = build_gspn_batched(net, max_states=MAX_STATES)
        assert batched._explore() == reference_exploration

    @pytest.mark.parametrize("seed", SEEDS[:10])
    def test_truncated_marking_graph_agrees(self, seed):
        # place_capacity truncation bounds every exploration (at most 3^P
        # markings), so the unbounded nets exercise the capacity path
        # differentially too.
        net = random_net(seed)
        compiled, reference = build_gspn_pair(net, max_states=10_000, place_capacity=2)
        assert_gspn_explorations_identical(compiled, reference)
        batched = build_gspn_batched(net, max_states=10_000, place_capacity=2)
        assert_gspn_explorations_identical(batched, reference)


class TestRandomizedEnabledSetProperty:
    """Incremental enabled-set maintenance vs a full from-scratch re-scan.

    The compiled builders never re-scan the transition list: every child's
    enabled set is *derived* from its parent's through the touched places.
    This property check walks the reachable vectors of seeded random nets
    and pins each derived set to a manual :meth:`NetTables.covers` scan of
    every transition.  The re-scan deliberately avoids
    ``enabled_transitions`` — that method memoizes into the same cache
    ``derive_enabled`` consults, which would make the comparison vacuous.
    """

    @pytest.mark.parametrize("seed", SEEDS[:20])
    def test_derive_enabled_matches_full_rescan(self, seed):
        net = random_net(seed)
        tables = NetTables(net)
        transition_count = len(tables.transition_names)

        def full_rescan(vec):
            return tuple(
                index for index in range(transition_count) if tables.covers(vec, index)
            )

        root = tables.initial_vector()
        frontier = [(root, full_rescan(root))]
        seen = {root}
        checked = 0
        while frontier and len(seen) < 200:
            vec, enabled = frontier.pop()
            for transition in enabled:
                child = tables.fire_atomic(vec, transition)
                touched = [place for place, _change in tables.deltas[transition]]
                derived = tables.derive_enabled(enabled, child, touched)
                assert derived == full_rescan(child), (
                    f"incremental enabled set diverged on seed {seed}: "
                    f"{vec} --t{transition}--> {child}"
                )
                checked += 1
                if child not in seen:
                    seen.add(child)
                    frontier.append((child, derived))
        # Only a dead initial marking yields nothing to check.
        assert checked > 0 or not full_rescan(root)
