"""Property tests for the canonical net identity (repro.petri.fingerprint).

The fingerprint underwrites every cache in the content-addressed pipeline
(``NetTables.of``, the artifact cache, the CLI's ``--cache-dir``), so these
tests pin down exactly what it may and may not depend on: invariant under
declaration reorder, name-preserving rebuilds, pickling and process
boundaries; sensitive to every identity-bearing component (structure, arc
weights, capacities, timings, frequencies, the initial marking).
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from fractions import Fraction

import pytest

import repro
from repro.petri import (
    NetBuilder,
    canonical_form,
    constraints_digest,
    net_cache_key,
    net_fingerprint,
    presentation_digest,
)
from repro.protocols import (
    simple_protocol_net,
    simple_protocol_symbolic,
    sliding_window_net,
)
from repro.symbolic import ConstraintSet


def build_protocol(
    *,
    name="proto",
    reverse=False,
    weight=1,
    firing_time=2,
    enabling_time=0,
    timeout=10,
    ok_frequency=Fraction(19, 20),
    tokens=1,
    capacity=None,
    descriptions=True,
):
    """A small lossy send/ack net with every identity knob exposed.

    ``reverse=True`` declares the same places and transitions in the
    opposite order — content-equal, presentation-different.
    """
    builder = NetBuilder(name)
    places = [("p1", "ready"), ("p2", "in flight"), ("p3", "acked")]
    transitions = [
        dict(
            name="send",
            inputs={"p1": weight},
            outputs=["p2"],
            enabling_time=enabling_time,
            firing_time=firing_time,
            description="transmit" if descriptions else "",
        ),
        dict(
            name="ok",
            inputs=["p2"],
            outputs=["p3"],
            frequency=ok_frequency,
            description="delivered" if descriptions else "",
        ),
        dict(
            name="lose",
            inputs=["p2"],
            outputs={"p1": weight},
            firing_time=timeout,
            frequency=1 - ok_frequency,
            description="timeout" if descriptions else "",
        ),
        dict(name="reset", inputs=["p3"], outputs={"p1": weight}),
    ]
    if reverse:
        places = list(reversed(places))
        transitions = list(reversed(transitions))
    for place, description in places:
        builder.place(place, description if descriptions else "", capacity=capacity)
    for spec in transitions:
        spec = dict(spec)
        builder.transition(spec.pop("name"), **spec)
    builder.mark("p1", tokens)
    return builder.build()


# ---------------------------------------------------------------------------
# Invariance
# ---------------------------------------------------------------------------


def test_rebuild_invariance():
    """Two independent builds of the same model share fingerprint AND key."""
    first, second = build_protocol(), build_protocol()
    assert first is not second
    assert canonical_form(first) == canonical_form(second)
    assert net_fingerprint(first) == net_fingerprint(second)
    assert presentation_digest(first) == presentation_digest(second)
    assert net_cache_key(first) == net_cache_key(second)


def test_bundled_workload_rebuild_invariance():
    kwargs = dict(loss_probability=Fraction(1, 10), packet_delay=2, ack_delay=2, timeout=6)
    assert net_fingerprint(sliding_window_net(4, **kwargs)) == net_fingerprint(
        sliding_window_net(4, **kwargs)
    )
    assert net_cache_key(sliding_window_net(4, **kwargs)) == net_cache_key(
        sliding_window_net(4, **kwargs)
    )


def test_declaration_reorder_keeps_fingerprint_not_cache_key():
    """Reordering declarations preserves content but changes presentation."""
    forward, backward = build_protocol(), build_protocol(reverse=True)
    assert canonical_form(forward) == canonical_form(backward)
    assert net_fingerprint(forward) == net_fingerprint(backward)
    # ... but graphs number their states by declaration order, so the
    # composite cache key must distinguish the two presentations.
    assert presentation_digest(forward) != presentation_digest(backward)
    assert net_cache_key(forward) != net_cache_key(backward)


def test_names_and_descriptions_are_presentation_only():
    plain = build_protocol(name="a", descriptions=True)
    renamed = build_protocol(name="b", descriptions=False)
    assert net_fingerprint(plain) == net_fingerprint(renamed)
    assert net_cache_key(plain) == net_cache_key(renamed)


def test_fingerprint_format_is_versioned():
    fingerprint = net_fingerprint(build_protocol())
    scheme, _, digest = fingerprint.partition(":")
    assert scheme == "tpn1"
    assert len(digest) == 64 and set(digest) <= set("0123456789abcdef")


# ---------------------------------------------------------------------------
# Sensitivity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "tweak",
    [
        {"weight": 2},  # arc weight
        {"firing_time": 3},  # firing time
        {"enabling_time": 1},  # enabling time
        {"timeout": 11},  # another transition's timing
        {"ok_frequency": Fraction(9, 10)},  # firing frequency / branch rate
        {"tokens": 2},  # initial marking
        {"capacity": 5},  # place capacity
    ],
    ids=lambda tweak: next(iter(tweak)),
)
def test_fingerprint_sensitivity(tweak):
    baseline = build_protocol()
    changed = build_protocol(**tweak)
    assert net_fingerprint(baseline) != net_fingerprint(changed)
    assert canonical_form(baseline) != canonical_form(changed)


def test_symbolic_timing_is_identity_bearing():
    net, constraints, symbols = simple_protocol_symbolic()
    numeric = simple_protocol_net()
    assert net_fingerprint(net) != net_fingerprint(numeric)
    # A second symbolic build is equal; binding the symbols changes identity.
    again, _constraints, _symbols = simple_protocol_symbolic()
    assert net_fingerprint(net) == net_fingerprint(again)
    bound = net.bind({symbol: Fraction(1) for symbol in symbols.values()})
    assert net_fingerprint(bound) != net_fingerprint(net)


def test_constraints_digest_properties():
    _net, constraints, _symbols = simple_protocol_symbolic()
    assert constraints_digest(None) == "none"
    assert constraints_digest(constraints) == constraints_digest(constraints)
    # Constraint declaration order is identity-bearing (positional labels).
    reordered = ConstraintSet(tuple(reversed(constraints.constraints)))
    assert constraints_digest(constraints) != constraints_digest(reordered)


# ---------------------------------------------------------------------------
# Stability across pickling and process boundaries
# ---------------------------------------------------------------------------


def test_fingerprint_survives_pickle_round_trip():
    net = build_protocol()
    fingerprint = net_fingerprint(net)
    clone = pickle.loads(pickle.dumps(net))
    assert net_fingerprint(clone) == fingerprint
    assert net_cache_key(clone) == net_cache_key(net)


def test_fingerprint_stable_across_spawned_subprocess():
    """The digest must not depend on hash seeds or interpreter state.

    A fresh interpreter (its own PYTHONHASHSEED) rebuilds the same model
    and must print the exact same fingerprint and cache key.
    """
    net = sliding_window_net(2, loss_probability=Fraction(1, 10))
    expected = net_cache_key(net)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    script = (
        "from fractions import Fraction\n"
        "from repro.petri import net_cache_key\n"
        "from repro.protocols import sliding_window_net\n"
        "net = sliding_window_net(2, loss_probability=Fraction(1, 10))\n"
        "print(net_cache_key(net))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "random"
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert result.stdout.strip() == expected
