"""Tests for structural/behavioural analysis: incidence, invariants, untimed graphs,
properties, siphons and traps."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import UnboundedNetError
from repro.petri import (
    IncidenceMatrices,
    NetBuilder,
    behavioural_report,
    check_state_equation,
    commoner_condition,
    coverability_graph,
    find_deadlocks,
    invariant_token_sums,
    is_bounded,
    is_covered_by_place_invariants,
    is_covered_by_transition_invariants,
    is_deadlock_free,
    is_live,
    is_quasi_live,
    is_reversible,
    is_safe,
    is_siphon,
    is_trap,
    maximal_siphon_within,
    maximal_trap_within,
    minimal_siphons,
    minimal_traps,
    place_invariants,
    reachability_graph,
    structural_bound_report,
    transition_invariants,
)
from repro.protocols import producer_consumer_net, token_ring_net


def bounded_cycle_net():
    """A 2-place cycle: trivially bounded, live and reversible."""
    builder = NetBuilder("cycle")
    builder.transition("go", inputs=["p"], outputs=["q"], firing_time=1)
    builder.transition("back", inputs=["q"], outputs=["p"], firing_time=1)
    builder.mark("p")
    return builder.build()


def unbounded_net():
    """A source transition pumps tokens into a place forever."""
    builder = NetBuilder("pump")
    builder.transition("produce", inputs=[], outputs=["p"], firing_time=1)
    builder.transition("consume", inputs=["p", "p"], outputs=[], firing_time=1)
    builder.mark("p")
    return builder.build()


def deadlocking_net():
    """Consumes its only token and stops."""
    builder = NetBuilder("dead")
    builder.transition("eat", inputs=["p"], outputs=[], firing_time=1)
    builder.mark("p")
    return builder.build()


class TestIncidence:
    def test_shapes_and_entries(self, paper_net):
        matrices = IncidenceMatrices(paper_net)
        assert matrices.pre_array().shape == (8, 9)
        # t1: p1 -> p2 + p4
        column = matrices.column("t1")
        place_index = {name: i for i, name in enumerate(paper_net.place_order)}
        assert column[place_index["p1"]] == -1
        assert column[place_index["p2"]] == 1
        assert column[place_index["p4"]] == 1

    def test_rank_positive(self, paper_net):
        assert IncidenceMatrices(paper_net).rank() >= 5

    def test_state_equation_cross_check(self, paper_net):
        # Fire t1 once: p1 -> p2, p4
        counts = [1 if name == "t1" else 0 for name in paper_net.transition_order]
        marking = paper_net.fire_untimed(paper_net.initial_marking, "t1")
        assert check_state_equation(paper_net, marking.to_vector(), counts)

    def test_state_equation_rejects_wrong_marking(self, paper_net):
        counts = [0] * len(paper_net.transition_order)
        wrong = list(paper_net.initial_marking.to_vector())
        wrong[0] += 1
        assert not check_state_equation(paper_net, wrong, counts)


class TestInvariants:
    def test_paper_place_invariants(self, paper_net):
        invariants = place_invariants(paper_net)
        supports = {inv.support for inv in invariants}
        assert ("p8",) in supports  # the receiver token is conserved
        assert ("p1", "p2", "p7") in supports  # the sender is always in exactly one local state

    def test_paper_transition_invariants_are_the_protocol_cycles(self, paper_net):
        invariants = transition_invariants(paper_net)
        supports = {frozenset(inv.support) for inv in invariants}
        assert frozenset({"t1", "t3", "t5"}) in supports  # packet lost
        assert frozenset({"t1", "t3", "t4", "t6", "t9"}) in supports  # ack lost
        assert frozenset({"t1", "t2", "t4", "t6", "t7", "t8"}) in supports  # success

    def test_invariant_token_sums_are_conserved(self, paper_net):
        for invariant, total in invariant_token_sums(paper_net):
            after = paper_net.fire_untimed(paper_net.initial_marking, "t1")
            assert invariant.weighted_sum(after.to_dict()) == total

    def test_coverage_flags(self, paper_net):
        assert not is_covered_by_place_invariants(paper_net)  # medium places are not conserved
        assert is_covered_by_transition_invariants(paper_net)
        ring = token_ring_net(3)
        assert is_covered_by_place_invariants(ring)

    def test_cycle_net_invariants(self):
        net = bounded_cycle_net()
        assert len(place_invariants(net)) == 1
        assert len(transition_invariants(net)) == 1


class TestUntimedGraphs:
    def test_cycle_net_reachability(self):
        graph = reachability_graph(bounded_cycle_net())
        assert graph.state_count == 2
        assert graph.edge_count == 2
        assert graph.is_deadlock_free()
        assert graph.is_safe()

    def test_unbounded_net_detected_by_coverability(self):
        graph = coverability_graph(unbounded_net())
        assert not graph.is_bounded()
        assert "p" in graph.unbounded_places()
        assert graph.place_bound("p") is None

    def test_unbounded_net_reachability_guard(self):
        with pytest.raises(UnboundedNetError):
            reachability_graph(unbounded_net(), max_states=50)

    def test_paper_net_untimed_semantics_is_unbounded(self, paper_net):
        # Ignoring time, the timeout can always fire and pump duplicate
        # packets into the medium — boundedness of the protocol is a *timed*
        # property, which is exactly why the timed reachability graph matters.
        assert not is_bounded(paper_net)

    def test_structural_bounds_for_bounded_net(self):
        bounds = structural_bound_report(producer_consumer_net(buffer_size=2))
        assert bounds["buffer_items"] == 2
        assert bounds["producer_idle"] == 1

    def test_deadlock_detection(self):
        assert find_deadlocks(deadlocking_net()) == [{}]
        assert not is_deadlock_free(deadlocking_net())
        assert is_deadlock_free(bounded_cycle_net())


class TestBehaviouralProperties:
    def test_cycle_net_full_report(self):
        report = behavioural_report(bounded_cycle_net())
        assert report.bounded and report.safe
        assert report.deadlock_free
        assert report.quasi_live
        assert report.live
        assert report.reversible
        assert report.reachable_markings == 2

    def test_deadlocking_net_report(self):
        report = behavioural_report(deadlocking_net())
        assert report.bounded
        assert not report.deadlock_free
        assert report.live is False
        assert report.reversible is False

    def test_safe_and_quasi_live_helpers(self):
        assert is_safe(bounded_cycle_net())
        assert is_quasi_live(bounded_cycle_net())
        assert is_live(bounded_cycle_net())
        assert is_reversible(bounded_cycle_net())
        assert not is_safe(unbounded_net())

    def test_token_ring_report(self):
        report = behavioural_report(token_ring_net(3))
        assert report.bounded and report.safe and report.live and report.reversible


class TestSiphonsTraps:
    def test_siphon_and_trap_detection(self):
        net = bounded_cycle_net()
        assert is_siphon(net, {"p", "q"})
        assert is_trap(net, {"p", "q"})
        assert not is_siphon(net, set())

    def test_paper_net_sender_cycle_is_siphon_and_trap(self, paper_net):
        sender = {"p1", "p2", "p7"}
        assert is_siphon(paper_net, sender)
        assert is_trap(paper_net, sender)

    def test_maximal_siphon_within(self, paper_net):
        assert maximal_siphon_within(paper_net, {"p1", "p2", "p7"}) == frozenset({"p1", "p2", "p7"})
        # p4 alone is not a siphon (t1 feeds it from outside), so it shrinks away.
        assert maximal_siphon_within(paper_net, {"p4"}) == frozenset()

    def test_maximal_trap_within(self, paper_net):
        assert maximal_trap_within(paper_net, {"p8"}) == frozenset({"p8"})

    def test_minimal_siphons_contains_receiver_token(self, paper_net):
        siphons = minimal_siphons(paper_net)
        assert frozenset({"p8"}) in siphons

    def test_minimal_traps(self):
        traps = minimal_traps(bounded_cycle_net())
        assert frozenset({"p", "q"}) in traps

    def test_commoner_condition_on_cycle_net(self):
        assert commoner_condition(bounded_cycle_net())

    def test_commoner_condition_fails_for_deadlocking_net(self):
        assert not commoner_condition(deadlocking_net())
