"""Unit tests for markings."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import MarkingError
from repro.petri import Marking, Multiset

PLACES = ("p1", "p2", "p3")


def make(tokens):
    return Marking(PLACES, tokens)


class TestConstruction:
    def test_simple(self):
        marking = make({"p1": 2})
        assert marking["p1"] == 2
        assert marking["p2"] == 0

    def test_unknown_place_rejected(self):
        with pytest.raises(MarkingError):
            make({"zzz": 1})

    def test_negative_tokens_rejected(self):
        with pytest.raises(MarkingError):
            make({"p1": -1})

    def test_non_integer_tokens_rejected(self):
        with pytest.raises(MarkingError):
            make({"p1": 0.5})

    def test_duplicate_place_order_rejected(self):
        with pytest.raises(MarkingError):
            Marking(("p1", "p1"), {})

    def test_lookup_of_unknown_place_raises(self):
        with pytest.raises(MarkingError):
            make({})["zzz"]


class TestQueries:
    def test_total_tokens(self):
        assert make({"p1": 2, "p3": 1}).total_tokens() == 3

    def test_marked_places_in_place_order(self):
        assert make({"p3": 1, "p1": 1}).marked_places() == ("p1", "p3")

    def test_covers(self):
        marking = make({"p1": 2, "p2": 1})
        assert marking.covers(Multiset({"p1": 1, "p2": 1}))
        assert not marking.covers(Multiset({"p3": 1}))

    def test_is_safe(self):
        assert make({"p1": 1, "p2": 1}).is_safe()
        assert not make({"p1": 2}).is_safe()


class TestTokenFlow:
    def test_remove_then_add_round_trips(self):
        marking = make({"p1": 2, "p2": 1})
        bag = Multiset({"p1": 1})
        assert marking.remove(bag).add(bag) == marking

    def test_remove_more_than_present_raises(self):
        with pytest.raises(MarkingError):
            make({"p1": 1}).remove(Multiset({"p1": 2}))

    def test_add_unknown_place_raises(self):
        with pytest.raises(MarkingError):
            make({}).add(Multiset({"zzz": 1}))


class TestConversions:
    def test_vector_round_trip(self):
        marking = make({"p1": 1, "p3": 2})
        assert marking.to_vector() == (1, 0, 2)
        assert Marking.from_vector(PLACES, (1, 0, 2)) == marking

    def test_from_vector_wrong_length(self):
        with pytest.raises(MarkingError):
            Marking.from_vector(PLACES, (1, 0))

    def test_to_dict_is_sparse(self):
        assert make({"p1": 1}).to_dict() == {"p1": 1}

    def test_with_place_order_superset(self):
        marking = make({"p1": 1})
        extended = marking.with_place_order(("p1", "p2", "p3", "p4"))
        assert extended["p1"] == 1
        assert extended.to_vector() == (1, 0, 0, 0)


class TestIdentity:
    def test_equality_ignores_place_order_identity(self):
        assert make({"p1": 1}) == Marking(("p3", "p1", "p2"), {"p1": 1})

    def test_hash_consistent_with_equality(self):
        assert hash(make({"p1": 1})) == hash(Marking(("p2", "p1"), {"p1": 1}))

    def test_format_row(self):
        assert make({"p1": 1, "p3": 2}).format_row() == "1 0 2"


@given(st.dictionaries(st.sampled_from(PLACES), st.integers(min_value=0, max_value=4)))
def test_vector_round_trip_property(tokens):
    marking = make(tokens)
    assert Marking.from_vector(PLACES, marking.to_vector()) == marking


@given(
    st.dictionaries(st.sampled_from(PLACES), st.integers(min_value=0, max_value=4)),
    st.dictionaries(st.sampled_from(PLACES), st.integers(min_value=0, max_value=2)),
)
def test_add_increases_every_count(tokens, extra):
    marking = make(tokens)
    bag = Multiset(extra)
    added = marking.add(bag)
    for place in PLACES:
        assert added[place] == marking[place] + bag[place]
