"""Differential and regression tests for the compiled reachability engine.

The compiled engine (:mod:`repro.reachability.compiled`) must reproduce the
reference successor procedure **bit for bit**: same node order, same edge
order, same delays, probabilities, fired/completed transition labels and
used-constraint labels.  These tests enforce that equivalence on every
bundled workload, cover the ``engine`` selection knob, the ``max_states``
bound and the overlap policies, and pin down the hot-path bugfixes that
shipped with the engine (uniform zero-frequency fallback, lossless
``edge_table`` rendering, O(1) marking lookups).  The workload registry and
graph-equality assertions live in the shared harness :mod:`engine_diff`,
which the untimed/GSPN differential tests reuse.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from engine_diff import (
    NUMERIC_WORKLOADS,
    WORKLOAD_IDS,
    assert_timed_graphs_identical,
    build_symbolic_timed_pair,
    build_timed_pair,
)
from repro.exceptions import MarkingError, SafenessViolationError, UnboundedNetError
from repro.petri.builder import NetBuilder
from repro.petri.marking import Marking
from repro.protocols import (
    go_back_n_net,
    simple_protocol_net,
    simple_protocol_symbolic,
    sliding_window_net,
    token_ring_net,
)
from repro.reachability import (
    OVERLAP_SKIP,
    CompiledSuccessorEngine,
    SuccessorGenerator,
    symbolic_timed_reachability_graph,
    timed_reachability_graph,
)
from repro.reachability.algebra import NumericProbabilityAlgebra, numeric_algebras


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("label,constructor", NUMERIC_WORKLOADS, ids=WORKLOAD_IDS)
    def test_numeric_workloads(self, label, constructor):
        compiled, reference = build_timed_pair(constructor(), max_states=20_000)
        assert_timed_graphs_identical(compiled, reference)

    def test_symbolic_paper_net_including_used_constraints(self):
        net, constraints, _symbols = simple_protocol_symbolic()
        compiled, reference = build_symbolic_timed_pair(net, constraints)
        assert_timed_graphs_identical(compiled, reference)
        # The Figure-7 bookkeeping must survive the compilation verbatim.
        assert compiled.used_constraint_labels() == reference.used_constraint_labels()
        assert compiled.constraint_usage() == reference.constraint_usage()
        assert any(compiled.used_constraint_labels())

    def test_compiled_is_the_default_engine(self):
        default = timed_reachability_graph(simple_protocol_net())
        explicit = timed_reachability_graph(simple_protocol_net(), engine="compiled")
        assert [n.state for n in default.nodes] == [n.state for n in explicit.nodes]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            timed_reachability_graph(simple_protocol_net(), engine="turbo")
        net, constraints, _symbols = simple_protocol_symbolic()
        with pytest.raises(ValueError, match="unknown engine"):
            symbolic_timed_reachability_graph(net, constraints, engine="turbo")


def overlapping_net():
    """A net where a transition becomes firable while it is already firing.

    ``t_long`` starts a 3-tick firing; ``t_feed`` completes after 1 tick and
    re-marks ``t_long``'s input place, so ``t_long`` is enabled again while
    its own firing is still in progress — the situation the paper's model
    restriction rules out.
    """
    builder = NetBuilder("overlap")
    builder.place("a", tokens=1)
    builder.place("c", tokens=1)
    builder.transition("t_long", inputs=["a"], outputs=[], firing_time=3)
    builder.transition("t_feed", inputs=["c"], outputs=["a"], firing_time=1)
    return builder.build()


class TestOverlapPolicies:
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_overlap_error_raises(self, engine):
        with pytest.raises(SafenessViolationError, match="already firing"):
            timed_reachability_graph(overlapping_net(), engine=engine)

    def test_overlap_skip_graphs_identical(self):
        compiled, reference = build_timed_pair(overlapping_net(), overlap_policy=OVERLAP_SKIP)
        assert_timed_graphs_identical(compiled, reference)
        # The skipped overlap means the long transition simply keeps firing.
        assert compiled.state_count > 1


class TestMaxStatesBound:
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_raises_exactly_at_the_limit(self, engine):
        net = token_ring_net(3)
        exact = timed_reachability_graph(net, engine=engine).state_count
        assert exact == 12
        # The full graph fits exactly: no error at the true size...
        graph = timed_reachability_graph(net, max_states=exact, engine=engine)
        assert graph.state_count == exact
        # ...and one state less trips the bound.
        with pytest.raises(UnboundedNetError, match=str(exact - 1)):
            timed_reachability_graph(net, max_states=exact - 1, engine=engine)


class _AllZeroProbabilities(NumericProbabilityAlgebra):
    """Probability algebra whose branch probabilities are always zero.

    Models a (possibly user-supplied) algebra that returns raw, unfiltered
    probability maps — the degenerate case the fire step's fallback guards.
    """

    def branch_probabilities(self, conflict_set, firable):
        return {name: Fraction(0) for name in firable}


def two_way_choice_net():
    builder = NetBuilder("choice")
    builder.place("p", tokens=1)
    builder.transition("a", inputs=["p"], outputs=[], firing_time=1, frequency=1)
    builder.transition("b", inputs=["p"], outputs=[], firing_time=2, frequency=1)
    return builder.build()


class TestUniformZeroFrequencyFallback:
    """Regression: the all-zero fallback must be genuinely uniform.

    It used to give the whole probability mass to the first firable member;
    now every firable member gets its own edge with probability ``1/n``.
    """

    def test_reference_generator_splits_uniformly(self):
        net = two_way_choice_net()
        time_algebra, _ = numeric_algebras()
        generator = SuccessorGenerator(net, time_algebra, _AllZeroProbabilities())
        edges = generator.successors(generator.initial_state())
        assert [(edge.fired, edge.probability) for edge in edges] == [
            (("a",), Fraction(1, 2)),
            (("b",), Fraction(1, 2)),
        ]

    def test_compiled_engine_splits_uniformly(self):
        net = two_way_choice_net()
        time_algebra, _ = numeric_algebras()
        engine = CompiledSuccessorEngine(net, time_algebra, _AllZeroProbabilities())
        edges = engine.successors(engine.initial_state())
        assert [(edge.fired, edge.probability) for edge in edges] == [
            (("a",), Fraction(1, 2)),
            (("b",), Fraction(1, 2)),
        ]


def fire_and_complete_net():
    """A selector that starts a timed firing and completes an instantaneous one."""
    builder = NetBuilder("fire-and-complete")
    builder.place("a", tokens=1)
    builder.place("c", tokens=1)
    builder.transition("t1", inputs=["a"], outputs=["b"], firing_time=2)
    builder.transition("t2", inputs=["c"], outputs=["d"], firing_time=0)
    return builder.build()


class TestEdgeTableRendering:
    """Regression: fire edges used to drop their ``!completed`` suffix."""

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_fire_edge_renders_completions(self, engine):
        graph = timed_reachability_graph(fire_and_complete_net(), engine=engine)
        actions = [row[4] for row in graph.edge_table()]
        assert "t1+t2!t2" in actions

    def test_advance_edge_still_renders_completions(self):
        graph = timed_reachability_graph(fire_and_complete_net())
        actions = [row[4] for row in graph.edge_table()]
        assert "!t1" in actions


class TestMarkingLookup:
    """Regression companions for the O(1) ``Marking.__getitem__``."""

    def test_known_place_lookup(self):
        marking = Marking(("p1", "p2", "p3"), {"p2": 2})
        assert marking["p1"] == 0
        assert marking["p2"] == 2

    def test_unknown_place_still_raises(self):
        marking = Marking(("p1", "p2"), {"p1": 1})
        with pytest.raises(MarkingError, match="unknown place"):
            marking["p9"]

    def test_add_rejects_unknown_places(self):
        marking = Marking(("p1",), {"p1": 1})
        from repro.petri.multiset import Multiset

        with pytest.raises(MarkingError, match="unknown place"):
            marking.add(Multiset(["zz"]))

    def test_trusted_constructor_matches_validated(self):
        order = ("p1", "p2")
        trusted = Marking._trusted(order, frozenset(order), {"p2": 1})
        assert trusted == Marking(order, {"p2": 1})
        assert hash(trusted) == hash(Marking(order, {"p2": 1}))
        assert trusted["p1"] == 0 and trusted["p2"] == 1


class TestWindowWorkloads:
    def test_sliding_window_grows_with_window(self):
        small = timed_reachability_graph(sliding_window_net(1))
        large = timed_reachability_graph(sliding_window_net(3))
        assert large.state_count > small.state_count
        assert not large.dead_nodes()

    def test_go_back_n_sends_in_order(self):
        graph = timed_reachability_graph(go_back_n_net(2))
        fired = [edge.fired for edge in graph.edges if edge.fired]
        sends = [
            [name for name in names if name.endswith("_send")]
            for names in fired
            if any(name.endswith("_send") for name in names)
        ]
        # The send-turn token serializes transmissions: the very first send
        # is slot 0's, and no selector ever starts two sends at once.
        assert sends and sends[0] == ["g0_send"]
        assert all(len(names) == 1 for names in sends)
        # Without loss the windowed pipeline is fully deterministic.
        assert not graph.decision_nodes()

    def test_lossy_windows_have_decision_states(self):
        graph = timed_reachability_graph(sliding_window_net(2, loss_probability=Fraction(1, 10)))
        assert graph.decision_nodes()
        graph = timed_reachability_graph(go_back_n_net(2, loss_probability=Fraction(1, 10)))
        assert graph.decision_nodes()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            sliding_window_net(0)
        with pytest.raises(ValueError):
            go_back_n_net(0)
        with pytest.raises(ValueError):
            sliding_window_net(2, loss_probability=2)
        with pytest.raises(ValueError):
            go_back_n_net(2, loss_probability=-1)
