"""PNML round-trip property test and importer validation.

The first half round-trips **every** bundled workload (the full
``model_catalog()``, plus the symbolic paper and sliding-window nets)
through ``net_to_pnml`` → ``net_from_pnml`` and asserts the restored net is
observably identical: place/transition order, arc multisets and weights,
initial marking, descriptions, and the toolspecific timing/frequency
annotations — numeric (``Fraction``-exact) and symbolic alike.

The second half pins the importer's validation diagnoses: negative
``initialMarking``, non-positive arc inscriptions, duplicate place and
transition ids, arcs referencing unknown node ids (distinguished, by id,
from genuinely ill-typed place→place / transition→transition arcs).
"""

from __future__ import annotations

import pytest

from repro.exceptions import NetDefinitionError
from repro.petri.io.pnml import net_from_pnml, net_to_pnml
from repro.protocols import (
    model_catalog,
    simple_protocol_symbolic,
    sliding_window_symbolic,
)

CATALOG = sorted(model_catalog().items())
CATALOG_IDS = [name for name, _constructor in CATALOG]


def assert_nets_identical(original, restored):
    """Everything PNML is contracted to carry, compared exactly."""
    assert restored.name == original.name
    assert restored.place_order == original.place_order
    assert restored.transition_order == original.transition_order
    assert restored.initial_marking == original.initial_marking
    for name in original.place_order:
        assert restored.places[name].description == original.places[name].description
    for name in original.transition_order:
        ours, theirs = original.transitions[name], restored.transitions[name]
        assert dict(theirs.inputs) == dict(ours.inputs)
        assert dict(theirs.outputs) == dict(ours.outputs)
        # Annotation values round-trip exactly — Fractions stay Fractions,
        # symbolic expressions reparse to equal expressions — though an
        # int may come back as an equal Fraction (parse_value is exact,
        # not type-preserving).
        assert theirs.enabling_time == ours.enabling_time
        assert theirs.firing_time == ours.firing_time
        assert theirs.firing_frequency == ours.firing_frequency
        assert theirs.description == ours.description


class TestRoundTrip:
    @pytest.mark.parametrize("name,constructor", CATALOG, ids=CATALOG_IDS)
    def test_catalog_workload(self, name, constructor):
        net = constructor()
        assert_nets_identical(net, net_from_pnml(net_to_pnml(net)))

    def test_symbolic_paper_net(self):
        net, _constraints, _symbols = simple_protocol_symbolic()
        restored = net_from_pnml(net_to_pnml(net))
        assert_nets_identical(net, restored)
        assert restored.is_symbolic

    def test_symbolic_sliding_window(self):
        net, _constraints, _symbols = sliding_window_symbolic()
        restored = net_from_pnml(net_to_pnml(net))
        assert_nets_identical(net, restored)
        assert restored.is_symbolic

    @pytest.mark.parametrize("name,constructor", CATALOG, ids=CATALOG_IDS)
    def test_double_round_trip_is_stable(self, name, constructor):
        # The first rendering is already a fixed point.
        once = net_to_pnml(constructor())
        assert net_to_pnml(net_from_pnml(once)) == once


def _document(body: str) -> str:
    return f'<pnml><net id="n" type="ptnet"><page id="p0">{body}</page></net></pnml>'


VALID_CORE = (
    '<place id="a"><initialMarking><text>1</text></initialMarking></place>'
    '<place id="b"/>'
    '<transition id="t"/>'
    '<arc id="a1" source="a" target="t"/>'
    '<arc id="a2" source="t" target="b"/>'
)


class TestImporterValidation:
    def test_valid_core_parses(self):
        net = net_from_pnml(_document(VALID_CORE))
        assert net.place_order == ("a", "b")
        assert net.initial_marking["a"] == 1

    def test_negative_initial_marking(self):
        body = '<place id="a"><initialMarking><text>-2</text></initialMarking></place>'
        with pytest.raises(NetDefinitionError, match=r"'a' has negative initialMarking -2"):
            net_from_pnml(_document(body))

    @pytest.mark.parametrize("weight", ["0", "-3"])
    def test_non_positive_inscription(self, weight):
        body = (
            '<place id="a"/><transition id="t"/>'
            f'<arc id="bad" source="a" target="t">'
            f"<inscription><text>{weight}</text></inscription></arc>"
        )
        with pytest.raises(
            NetDefinitionError, match=rf"arc 'bad' has non-positive inscription {weight}"
        ):
            net_from_pnml(_document(body))

    def test_duplicate_place_id(self):
        body = '<place id="a"/><place id="a"/>'
        with pytest.raises(NetDefinitionError, match=r"duplicate PNML place id 'a'"):
            net_from_pnml(_document(body))

    def test_duplicate_transition_id(self):
        body = '<transition id="t"/><transition id="t"/>'
        with pytest.raises(NetDefinitionError, match=r"duplicate PNML transition id 't'"):
            net_from_pnml(_document(body))

    def test_arc_with_unknown_source(self):
        body = '<place id="a"/><transition id="t"/><arc id="a9" source="ghost" target="t"/>'
        with pytest.raises(
            NetDefinitionError, match=r"arc 'a9' .* unknown node id 'ghost'"
        ):
            net_from_pnml(_document(body))

    def test_arc_with_two_unknown_endpoints(self):
        body = '<place id="a"/><arc id="a9" source="ghost1" target="ghost2"/>'
        with pytest.raises(
            NetDefinitionError, match=r"unknown node ids 'ghost1', 'ghost2'"
        ):
            net_from_pnml(_document(body))

    def test_place_to_place_arc(self):
        body = '<place id="a"/><place id="b"/><arc id="pp" source="a" target="b"/>'
        with pytest.raises(NetDefinitionError, match=r"arc 'pp' .* joins two places"):
            net_from_pnml(_document(body))

    def test_transition_to_transition_arc(self):
        body = '<transition id="t"/><transition id="u"/><arc id="tt" source="t" target="u"/>'
        with pytest.raises(NetDefinitionError, match=r"arc 'tt' .* joins two transitions"):
            net_from_pnml(_document(body))

    def test_unknown_id_diagnosis_beats_type_diagnosis(self):
        # A typo'd endpoint must be reported as unknown even when the other
        # endpoint would make the arc look ill-typed.
        body = '<place id="a"/><place id="b"/><arc id="x" source="a" target="bb"/>'
        with pytest.raises(NetDefinitionError, match=r"unknown node id 'bb'"):
            net_from_pnml(_document(body))

    def test_anonymous_arc_gets_a_positional_id(self):
        body = '<place id="a"/><arc source="a" target="ghost"/>'
        with pytest.raises(NetDefinitionError, match=r"arc 'arc#1'"):
            net_from_pnml(_document(body))
