"""Tests for symbols, linear expressions, polynomials, rational functions and GCD."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExpressionDomainError
from repro.symbolic import (
    LinExpr,
    Polynomial,
    RatFunc,
    Symbol,
    as_expr,
    as_fraction,
    as_time,
    frequency_symbol,
    is_symbolic,
    time_symbol,
)
from repro.symbolic.gcd import cancel_common_factor, polynomial_gcd

X = time_symbol("X")
Y = time_symbol("Y")
Z = time_symbol("Z")
F = frequency_symbol("f")


# ---------------------------------------------------------------------------
# Symbols
# ---------------------------------------------------------------------------


class TestSymbols:
    def test_interning(self):
        assert Symbol("X", "time") is Symbol("X", "time")
        assert Symbol("X", "time") is not Symbol("X", "frequency")

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Symbol("X", "weird")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Symbol("", "time")

    def test_nonnegativity_flag(self):
        assert time_symbol("T").is_nonnegative
        assert frequency_symbol("f").is_nonnegative
        assert not Symbol("g", "generic").is_nonnegative

    def test_ordering_is_deterministic(self):
        assert sorted([Symbol("b", "time"), Symbol("a", "time")])[0].name == "a"


# ---------------------------------------------------------------------------
# as_fraction / as_time coercions
# ---------------------------------------------------------------------------


class TestCoercions:
    def test_float_uses_decimal_repr(self):
        assert as_fraction(106.7) == Fraction(1067, 10)
        assert as_fraction(13.5) == Fraction(27, 2)

    def test_string_fraction(self):
        assert as_fraction("1067/10") == Fraction(1067, 10)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_nan_rejected(self):
        with pytest.raises(ExpressionDomainError):
            as_fraction(float("nan"))

    def test_as_time_keeps_symbols(self):
        assert as_time(X) == LinExpr.from_symbol(X)
        assert as_time(5) == Fraction(5)
        assert as_time(LinExpr.constant(3)) == Fraction(3)

    def test_is_symbolic(self):
        assert is_symbolic(LinExpr.from_symbol(X))
        assert not is_symbolic(LinExpr.constant(4))
        assert not is_symbolic(Fraction(4))


# ---------------------------------------------------------------------------
# LinExpr
# ---------------------------------------------------------------------------


class TestLinExpr:
    def test_arithmetic(self):
        expression = as_expr(X) + 2 * as_expr(Y) - 3
        assert expression.coefficient(X) == 1
        assert expression.coefficient(Y) == 2
        assert expression.constant_term == -3

    def test_cancellation(self):
        assert (as_expr(X) - as_expr(X)).is_zero()

    def test_scalar_division(self):
        assert (as_expr(X) * 4 / 2).coefficient(X) == 2

    def test_division_by_zero_rejected(self):
        with pytest.raises(ExpressionDomainError):
            as_expr(X) / 0

    def test_evaluate(self):
        expression = as_expr(X) - as_expr(Y) + 1
        assert expression.evaluate({X: 10, Y: 3}) == 8

    def test_evaluate_missing_binding(self):
        with pytest.raises(ExpressionDomainError):
            as_expr(X).evaluate({})

    def test_substitute_with_expression(self):
        expression = as_expr(X) + as_expr(Y)
        substituted = expression.substitute({X: as_expr(Y) + 1})
        assert substituted == 2 * as_expr(Y) + 1

    def test_constant_value_of_symbolic_raises(self):
        with pytest.raises(ExpressionDomainError):
            as_expr(X).constant_value()

    def test_equality_with_numbers_and_symbols(self):
        assert LinExpr.constant(3) == 3
        assert as_expr(X) == X
        assert as_expr(X) != as_expr(Y)

    def test_str_rendering(self):
        assert str(as_expr(X) - as_expr(Y)) in ("X - Y", "-Y + X")
        assert str(LinExpr.zero()) == "0"
        assert "106.7" in str(LinExpr.constant(Fraction("106.7")))

    def test_hashable_and_usable_as_dict_key(self):
        mapping = {as_expr(X) - as_expr(Y): "value"}
        assert mapping[as_expr(X) - as_expr(Y)] == "value"


coefficients = st.integers(min_value=-5, max_value=5)


@st.composite
def linexprs(draw):
    terms = {
        symbol: draw(coefficients)
        for symbol in draw(st.sets(st.sampled_from([X, Y, Z]), max_size=3))
    }
    return LinExpr(terms, draw(coefficients))


class TestLinExprProperties:
    @given(linexprs(), linexprs())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(linexprs(), linexprs(), linexprs())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(linexprs())
    def test_subtraction_gives_zero(self, a):
        assert (a - a).is_zero()

    @given(linexprs(), st.integers(min_value=-4, max_value=4), st.integers(min_value=-4, max_value=4))
    def test_scaling_distributes(self, a, m, n):
        assert a * (m + n) == a * m + a * n

    @given(linexprs(), linexprs(), st.dictionaries(st.sampled_from([X, Y, Z]), coefficients))
    def test_evaluation_is_linear(self, a, b, bindings):
        bindings = {X: 0, Y: 0, Z: 0, **bindings}
        assert (a + b).evaluate(bindings) == a.evaluate(bindings) + b.evaluate(bindings)


# ---------------------------------------------------------------------------
# Polynomial
# ---------------------------------------------------------------------------


class TestPolynomial:
    def test_construction_and_degree(self):
        poly = Polynomial.from_symbol(X, 2) + Polynomial.from_symbol(Y) + 1
        assert poly.degree() == 2
        assert Polynomial.zero().degree() == -1
        assert Polynomial.constant(5).degree() == 0

    def test_multiplication_expands(self):
        product = (Polynomial.from_symbol(X) + 1) * (Polynomial.from_symbol(X) - 1)
        assert product == Polynomial.from_symbol(X, 2) - 1

    def test_power(self):
        square = (Polynomial.from_symbol(X) + Polynomial.from_symbol(Y)) ** 2
        expected = (
            Polynomial.from_symbol(X, 2)
            + Polynomial.from_symbol(Y, 2)
            + Polynomial.from_symbol(X) * Polynomial.from_symbol(Y) * 2
        )
        assert square == expected

    def test_negative_power_rejected(self):
        with pytest.raises(ExpressionDomainError):
            Polynomial.from_symbol(X) ** -1

    def test_exact_division_succeeds(self):
        x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
        product = (x + y) * (x + 2 * y)
        assert product.exact_divide(x + y) == x + 2 * y

    def test_exact_division_fails_cleanly(self):
        x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
        assert (x + y).exact_divide(x + 2 * y) is None

    def test_division_by_zero_rejected(self):
        with pytest.raises(ExpressionDomainError):
            Polynomial.from_symbol(X).exact_divide(Polynomial.zero())

    def test_from_linexpr_round_trip(self):
        expression = 2 * as_expr(X) - as_expr(Y) + 5
        assert Polynomial.from_linexpr(expression).as_linexpr() == expression

    def test_as_linexpr_rejects_quadratics(self):
        with pytest.raises(ExpressionDomainError):
            Polynomial.from_symbol(X, 2).as_linexpr()

    def test_evaluate_and_substitute(self):
        poly = Polynomial.from_symbol(X) * Polynomial.from_symbol(Y) + 1
        assert poly.evaluate({X: 3, Y: 4}) == 13
        substituted = poly.substitute({X: Polynomial.from_symbol(Y)})
        assert substituted == Polynomial.from_symbol(Y, 2) + 1

    def test_content_and_primitive(self):
        poly = Polynomial.from_symbol(X).scale(4) + Polynomial.from_symbol(Y).scale(6)
        content, monomial, primitive = poly.primitive_part()
        assert content == 2
        assert monomial == ()
        assert primitive == Polynomial.from_symbol(X).scale(2) + Polynomial.from_symbol(Y).scale(3)


@st.composite
def polynomials(draw):
    x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
    basis = [Polynomial.constant(1), x, y, x * y, x * x]
    coefficients_list = draw(st.lists(st.integers(-3, 3), min_size=len(basis), max_size=len(basis)))
    total = Polynomial.zero()
    for coefficient, base in zip(coefficients_list, basis):
        total = total + base.scale(coefficient)
    return total


class TestPolynomialProperties:
    @settings(max_examples=40)
    @given(polynomials(), polynomials())
    def test_multiplication_commutes(self, a, b):
        assert a * b == b * a

    @settings(max_examples=40)
    @given(polynomials(), polynomials(), polynomials())
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @settings(max_examples=40)
    @given(polynomials(), polynomials())
    def test_product_divisible_by_factors(self, a, b):
        if a.is_zero() or b.is_zero():
            return
        assert (a * b).exact_divide(a) == b

    @settings(max_examples=40)
    @given(polynomials(), st.dictionaries(st.sampled_from([X, Y]), st.integers(-3, 3)))
    def test_evaluation_is_ring_homomorphism(self, a, bindings):
        bindings = {X: 1, Y: 1, **bindings}
        b = Polynomial.from_symbol(X) + 2
        assert (a * b).evaluate(bindings) == a.evaluate(bindings) * b.evaluate(bindings)
        assert (a + b).evaluate(bindings) == a.evaluate(bindings) + b.evaluate(bindings)


# ---------------------------------------------------------------------------
# GCD and RatFunc
# ---------------------------------------------------------------------------


class TestGcd:
    def test_simple_common_factor(self):
        x, y, f = Polynomial.from_symbol(X), Polynomial.from_symbol(Y), Polynomial.from_symbol(F)
        a = (x + y) * f
        b = (x + y) * (x + 2 * y)
        assert polynomial_gcd(a, b) == x + y

    def test_coprime_polynomials(self):
        x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
        assert polynomial_gcd(x + 1, y + 1) == Polynomial.one()

    def test_gcd_with_zero(self):
        x = Polynomial.from_symbol(X)
        assert polynomial_gcd(Polynomial.zero(), x + 1) == x + 1

    def test_gcd_of_constants_is_one(self):
        assert polynomial_gcd(Polynomial.constant(4), Polynomial.constant(6)) == Polynomial.one()

    def test_cancel_common_factor(self):
        x, y, z = (Polynomial.from_symbol(s) for s in (X, Y, Z))
        numerator, denominator = cancel_common_factor((x + y) * z, (x + y) * (x + 2 * y))
        assert numerator == z
        assert denominator == x + 2 * y

    @settings(max_examples=30, deadline=None)
    @given(polynomials(), polynomials(), polynomials())
    def test_gcd_divides_both(self, a, b, c):
        left, right = a * c, b * c
        if left.is_zero() or right.is_zero():
            return
        divisor = polynomial_gcd(left, right)
        assert left.exact_divide(divisor) is not None
        assert right.exact_divide(divisor) is not None
        # the common factor c must divide the gcd
        if not c.is_zero():
            assert divisor.exact_divide(c) is not None or c.is_constant()


class TestRatFunc:
    def test_probability_expression(self):
        f4, f5 = Polynomial.from_symbol(frequency_symbol("f4")), Polynomial.from_symbol(frequency_symbol("f5"))
        probability = RatFunc(f4, f4 + f5)
        assert probability.evaluate({frequency_symbol("f4"): Fraction(19, 20), frequency_symbol("f5"): Fraction(1, 20)}) == Fraction(19, 20)

    def test_cancellation_on_construction(self):
        x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
        ratio = RatFunc((x + y) * x, (x + y) * y)
        assert ratio == RatFunc(x, y)
        assert ratio.numerator == x
        assert ratio.denominator == y

    def test_zero_denominator_rejected(self):
        with pytest.raises(ExpressionDomainError):
            RatFunc(1, 0)

    def test_field_arithmetic(self):
        x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
        half = RatFunc(x, x + y)
        other = RatFunc(y, x + y)
        assert half + other == RatFunc.one()
        assert half * (x + y) == RatFunc(x)
        assert (half / other) == RatFunc(x, y)
        assert -half + half == RatFunc.zero()

    def test_sum_of_probabilities_is_one(self):
        f4, f5 = frequency_symbol("f4"), frequency_symbol("f5")
        p = RatFunc(Polynomial.from_symbol(f4), Polynomial.from_symbol(f4) + Polynomial.from_symbol(f5))
        q = RatFunc(Polynomial.from_symbol(f5), Polynomial.from_symbol(f4) + Polynomial.from_symbol(f5))
        assert p + q == 1

    def test_reciprocal(self):
        x = Polynomial.from_symbol(X)
        assert RatFunc(x, x + 1).reciprocal() == RatFunc(x + 1, x)
        with pytest.raises(ExpressionDomainError):
            RatFunc.zero().reciprocal()

    def test_substitute_numbers(self):
        x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
        ratio = RatFunc(x, y)
        assert ratio.substitute({X: 6, Y: 3}) == 2

    def test_substitute_ratfunc(self):
        x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
        ratio = RatFunc(x, x + 1)
        nested = ratio.substitute({X: RatFunc(1, y)})
        assert nested == RatFunc(Polynomial.one(), y + 1)

    def test_partial_derivative_quotient_rule(self):
        x = Polynomial.from_symbol(X)
        ratio = RatFunc(x, x + 1)  # derivative = 1/(x+1)^2
        derivative = ratio.partial_derivative(X)
        assert derivative == RatFunc(Polynomial.one(), (x + 1) * (x + 1))

    def test_evaluate_zero_denominator_rejected(self):
        x, y = Polynomial.from_symbol(X), Polynomial.from_symbol(Y)
        with pytest.raises(ExpressionDomainError):
            RatFunc(x, y).evaluate({X: 1, Y: 0})

    def test_constant_value(self):
        assert RatFunc(Polynomial.constant(3), Polynomial.constant(6)).constant_value() == Fraction(1, 2)

    @settings(max_examples=30, deadline=None)
    @given(polynomials(), polynomials(), polynomials())
    def test_addition_matches_evaluation(self, a, b, c):
        if c.is_zero():
            return
        left = RatFunc(a, c)
        right = RatFunc(b, c)
        total = left + right
        bindings = {X: Fraction(3), Y: Fraction(5)}
        if c.evaluate(bindings) == 0:
            return
        assert total.evaluate(bindings) == left.evaluate(bindings) + right.evaluate(bindings)
