"""End-to-end tests of the analysis service (HTTP/JSON job API).

The contract under test: a net submitted over HTTP is analyzed through
the same content-addressed pipeline as a direct
:class:`~repro.analysis.AnalysisSession` — identical nets (including
reordered declarations of the same content) are answered from the cache
without re-running a builder, the serving tier is reported per job,
cancellation stops a running build at a frontier boundary leaving a
resumable checkpoint, and a warm hit is **bit-identical** to a cold build
by the assertions of the engine differential gate (:mod:`engine_diff`).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from fractions import Fraction

import pytest

from engine_diff import assert_untimed_graphs_identical
from repro.analysis import AnalysisSession
from repro.engine.runtime import Checkpoint
from repro.petri.fingerprint import net_cache_key, net_fingerprint
from repro.petri.io import jsonio
from repro.petri.untimed import reachability_graph
from repro.protocols import simple_protocol_net, sliding_window_net
from repro.service import JobManager, make_server
from repro.service.schemas import (
    MAX_BATCH,
    ServiceError,
    parse_batch,
    parse_job,
)

TERMINAL = ("done", "error", "cancelled", "interrupted")


def window_net(size: int = 2):
    return sliding_window_net(size, loss_probability=Fraction(1, 20))


def net_payload(net) -> dict:
    return jsonio.net_to_dict(net)


class Client:
    """A tiny urllib JSON client against one in-process server."""

    def __init__(self, server):
        host, port = server.server_address[:2]
        self.base = f"http://{host}:{port}"

    def request(self, method: str, path: str, payload=None):
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def submit(self, net, stage, params=None, **extra):
        body = {"net": net_payload(net), "stage": stage, "params": params or {}}
        body.update(extra)
        status, record = self.request("POST", "/jobs", body)
        assert status == 202, record
        return record

    def wait(self, job_id: str, timeout: float = 60.0, states=TERMINAL):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, record = self.request("GET", f"/jobs/{job_id}")
            assert status == 200, record
            if record["status"] in states:
                return record
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not reach {states} in {timeout}s")

    def run(self, net, stage, params=None, **extra):
        record = self.wait(self.submit(net, stage, params, **extra)["id"])
        assert record["status"] == "done", record
        return record


@pytest.fixture
def service(tmp_path):
    server = make_server(
        "127.0.0.1",
        0,
        cache_dir=str(tmp_path / "cache"),
        workers=2,
        checkpoint_every=200,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, Client(server)
    finally:
        server.close()
        thread.join(timeout=5)


# ---------------------------------------------------------------------------
# Every stage, submit/poll/result
# ---------------------------------------------------------------------------


class TestStages:
    def test_tables(self, service):
        _, client = service
        record = client.run(window_net(2), "tables")
        assert record["result"]["places"] > 0
        assert record["result"]["transitions"] > 0
        assert record["cache"]["tier"] == "built"

    def test_untimed(self, service):
        _, client = service
        net = window_net(2)
        record = client.run(net, "untimed")
        graph = reachability_graph(net)
        assert record["result"]["states"] == graph.state_count
        assert record["result"]["edges"] == graph.edge_count
        assert record["result"]["bound"] == graph.bound()

    def test_coverability(self, service):
        _, client = service
        record = client.run(window_net(2), "coverability")
        assert record["result"]["bounded"] is True
        assert record["result"]["nodes"] > 0

    def test_gspn(self, service):
        _, client = service
        record = client.run(window_net(2), "gspn")
        assert record["result"]["tangible_states"] > 0
        assert all(value >= 0 for value in record["result"]["throughput"].values())

    def test_decision_and_performance(self, service):
        _, client = service
        net = simple_protocol_net()
        decision = client.run(net, "decision")
        assert decision["result"]["anchors"] > 0
        performance = client.run(net, "performance")
        assert performance["result"]["cycle_time"]["value"] > 0
        assert "t2" in performance["result"]["throughput"]

    def test_query_kinds(self, service):
        _, client = service
        net = window_net(2)
        deadlock = client.run(net, "query", {"kind": "deadlock"})
        assert deadlock["result"]["found"] is False
        bound = client.run(net, "query", {"kind": "bound", "place": "sender_ready", "k": 1})
        assert bound["result"]["found"] is False  # 1-safe shared sender token
        reachable = client.run(
            net,
            "query",
            {"kind": "reachable", "target": dict(net.initial_marking.to_dict())},
        )
        assert reachable["result"]["found"] is True
        assert reachable["result"]["path"] == []

    def test_batch_submission(self, service):
        _, client = service
        net = net_payload(window_net(2))
        status, body = client.request(
            "POST",
            "/jobs/batch",
            {
                "jobs": [
                    {"net": net, "stage": "untimed"},
                    {"net": net, "stage": "coverability"},
                    {"net": net, "stage": "query", "params": {"kind": "deadlock"}},
                ]
            },
        )
        assert status == 202
        records = [client.wait(entry["id"]) for entry in body["jobs"]]
        assert [record["status"] for record in records] == ["done"] * 3

    def test_batch_is_all_or_nothing(self, service):
        _, client = service
        net = net_payload(window_net(2))
        before = client.request("GET", "/jobs")[1]["jobs"]
        status, body = client.request(
            "POST",
            "/jobs/batch",
            {"jobs": [{"net": net, "stage": "untimed"}, {"net": net, "stage": "nope"}]},
        )
        assert status == 400
        assert body["error"]["code"] == "unknown-stage"
        assert "jobs[1]" in body["error"]["message"]
        after = client.request("GET", "/jobs")[1]["jobs"]
        assert len(after) == len(before)


# ---------------------------------------------------------------------------
# Cache behavior over HTTP
# ---------------------------------------------------------------------------


class TestCaching:
    def test_identical_resubmission_served_from_memory(self, service):
        _, client = service
        net = window_net(2)
        first = client.run(net, "untimed")
        second = client.run(net, "untimed")
        assert first["cache"]["tier"] == "built"
        assert second["cache"]["tier"] == "memory"
        assert second["cache"]["key"] == first["cache"]["key"]

    def test_concurrent_identical_submissions_build_once(self, service):
        _, client = service
        net = window_net(3)
        a = client.submit(net, "untimed")
        b = client.submit(net, "untimed")
        records = [client.wait(a["id"]), client.wait(b["id"])]
        assert [record["status"] for record in records] == ["done", "done"]
        assert sorted(record["cache"]["tier"] for record in records) == [
            "built",
            "memory",
        ]
        stats = client.request("GET", "/cache/stats")[1]
        assert stats["cache"]["disk_stages"].get("untimed-graph") == 1

    def test_reordered_declarations_served_without_rebuild(self, service):
        _, client = service
        payload = net_payload(window_net(2))
        reordered = dict(payload)
        reordered["places"] = list(reversed(payload["places"]))
        reordered["transitions"] = list(reversed(payload["transitions"]))
        original_net = jsonio.net_from_dict(payload)
        reordered_net = jsonio.net_from_dict(reordered)
        assert net_fingerprint(original_net) == net_fingerprint(reordered_net)
        assert net_cache_key(original_net) != net_cache_key(reordered_net)

        first = client.wait(
            client.request("POST", "/jobs", {"net": payload, "stage": "untimed"})[1]["id"]
        )
        second = client.wait(
            client.request("POST", "/jobs", {"net": reordered, "stage": "untimed"})[1][
                "id"
            ]
        )
        assert first["status"] == second["status"] == "done"
        assert first["cache"]["tier"] == "built"
        # Same content, own presentation key: answered from the cache under
        # the elected presentation, no second build.
        assert second["cache"]["tier"] == "memory"
        assert second["net"]["canonicalized"] is True
        assert second["net"]["cache_key"] != second["net"]["served_key"]
        assert second["net"]["served_key"] == first["net"]["served_key"]
        stats = client.request("GET", "/cache/stats")[1]
        assert stats["cache"]["disk_stages"].get("untimed-graph") == 1

    def test_warm_hit_is_bit_identical_to_direct_session(self, service):
        server, client = service
        net = window_net(3)
        record = client.run(net, "untimed")
        cold = reachability_graph(net)
        assert record["result"]["states"] == cold.state_count
        # A direct session over the same shared cache must hit, and the
        # served artifact must be exactly the cold build.
        session = AnalysisSession(cache=server.manager.cache)
        warm = session.untimed_graph(net)
        assert session.stage_outcomes["untimed-graph"] in (
            {"memory": 1},
            {"disk": 1},
        )
        assert_untimed_graphs_identical(warm, cold)


# ---------------------------------------------------------------------------
# Cancellation / deadline / resume
# ---------------------------------------------------------------------------


class TestRunControl:
    def _submit_slow(self, client, **extra):
        # ~15k states: a couple of seconds of build, plenty of frontier
        # boundaries to cancel at.
        return client.submit(
            window_net(6),
            "untimed",
            checkpoint_every=200,
            progress_every=50,
            **extra,
        )

    def test_cancel_mid_build_leaves_resumable_checkpoint(self, service):
        server, client = service
        job = self._submit_slow(client)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            record = client.request("GET", f"/jobs/{job['id']}")[1]
            if record["progress"] and record["progress"]["expanded"] > 0:
                break
            time.sleep(0.01)
        else:
            raise AssertionError("job never reported progress")

        status, record = client.request("DELETE", f"/jobs/{job['id']}")
        assert status == 200
        record = client.wait(job["id"])
        assert record["status"] == "cancelled"
        assert record["interrupt"]["resumable"] is True
        checkpoint_dir = record["interrupt"]["checkpoint"]
        assert checkpoint_dir and os.path.isdir(checkpoint_dir)
        checkpoint = Checkpoint.load(checkpoint_dir)
        assert checkpoint.cursor > 0

        status, record = client.request("POST", f"/jobs/{job['id']}/resume")
        assert status == 202
        record = client.wait(job["id"])
        assert record["status"] == "done", record
        cold = reachability_graph(window_net(6))
        assert record["result"]["states"] == cold.state_count
        assert record["result"]["edges"] == cold.edge_count
        # The resumed artifact landed in the shared cache bit-identically.
        session = AnalysisSession(cache=server.manager.cache)
        warm = session.untimed_graph(window_net(6))
        assert_untimed_graphs_identical(warm, cold)

    def test_deadline_interrupts_with_resumable_checkpoint(self, service):
        _, client = service
        job = self._submit_slow(client, deadline=0.3)
        record = client.wait(job["id"])
        assert record["status"] == "interrupted"
        assert record["interrupt"]["reason"] == "deadline"
        assert record["interrupt"]["resumable"] is True
        assert Checkpoint.load(record["interrupt"]["checkpoint"]).reason == "deadline"

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        manager = JobManager(cache_dir=str(tmp_path / "cache"), workers=1)
        try:
            # Pin the single worker on a slow job, then cancel a queued one.
            slow = manager.submit(parse_job({"net": net_payload(window_net(6)), "stage": "untimed"}))
            queued = manager.submit(
                parse_job({"net": net_payload(window_net(2)), "stage": "untimed"})
            )
            cancelled = manager.cancel(queued.id)
            assert cancelled.status == "cancelled"
            record = manager.describe(cancelled)
            assert record["interrupt"]["resumable"] is False
            manager.cancel(slow.id)
        finally:
            manager.shutdown()

    def test_resume_rejected_for_completed_job(self, service):
        _, client = service
        record = client.run(window_net(2), "untimed")
        status, body = client.request("POST", f"/jobs/{record['id']}/resume")
        assert status == 409
        assert body["error"]["code"] == "not-resumable"


# ---------------------------------------------------------------------------
# Errors and observability
# ---------------------------------------------------------------------------


class TestErrorsAndHealth:
    def test_unknown_stage(self, service):
        _, client = service
        status, body = client.request(
            "POST", "/jobs", {"net": net_payload(window_net(2)), "stage": "frobnicate"}
        )
        assert status == 400
        assert body["error"]["code"] == "unknown-stage"
        assert "untimed" in body["error"]["detail"]["stages"]

    def test_malformed_net(self, service):
        _, client = service
        status, body = client.request(
            "POST", "/jobs", {"net": {"places": "nonsense"}, "stage": "untimed"}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid-net"
        status, body = client.request("POST", "/jobs", {"stage": "untimed"})
        assert status == 400
        assert body["error"]["code"] == "invalid-net"

    def test_invalid_params(self, service):
        _, client = service
        net = net_payload(window_net(2))
        status, body = client.request(
            "POST", "/jobs", {"net": net, "stage": "untimed", "params": {"max_state": 5}}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid-params"
        status, body = client.request(
            "POST",
            "/jobs",
            {"net": net, "stage": "untimed", "params": {"engine": "parallel"}},
        )
        assert status == 400
        status, body = client.request(
            "POST", "/jobs", {"net": net, "stage": "query", "params": {"kind": "bound"}}
        )
        assert status == 400

    def test_invalid_json_body(self, service):
        _, client = service
        request = urllib.request.Request(
            client.base + "/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_job_and_route(self, service):
        _, client = service
        status, body = client.request("GET", "/jobs/j-missing")
        assert status == 404
        assert body["error"]["code"] == "unknown-job"
        status, body = client.request("GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "unknown-route"

    def test_unbounded_net_reported_as_job_error(self, service):
        _, client = service
        record = client.submit(
            simple_protocol_net(), "untimed", params={"max_states": 50}
        )
        record = client.wait(record["id"])
        assert record["status"] == "error"
        assert record["error"]["type"] == "UnboundedNetError"

    def test_healthz(self, service):
        _, client = service
        status, body = client.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["restarts"] == 0
        assert len(body["workers"]) == 2
        assert all(worker["alive"] for worker in body["workers"])

    def test_cache_stats_shape(self, service):
        _, client = service
        client.run(window_net(2), "untimed")
        status, body = client.request("GET", "/cache/stats")
        assert status == 200
        assert body["cache"]["stores"] >= 1
        assert body["canonical_nets"] == 1
        # The single-flight entry is released an instant after the job
        # record turns terminal; poll briefly instead of racing it.
        deadline = time.monotonic() + 5
        while body["inflight_builds"] != 0 and time.monotonic() < deadline:
            time.sleep(0.02)
            body = client.request("GET", "/cache/stats")[1]
        assert body["inflight_builds"] == 0


# ---------------------------------------------------------------------------
# Schema validation (no server)
# ---------------------------------------------------------------------------


class TestSchemas:
    def test_parse_job_roundtrip(self):
        request = parse_job(
            {
                "net": net_payload(window_net(2)),
                "stage": "untimed",
                "params": {"max_states": 500},
                "deadline": 2.5,
            }
        )
        assert request.stage == "untimed"
        assert request.params == {"max_states": 500}
        assert request.deadline == 2.5

    def test_parse_job_rejects_bad_deadline(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_job(
                {"net": net_payload(window_net(2)), "stage": "untimed", "deadline": -1}
            )
        assert excinfo.value.status == 400

    def test_parse_batch_limits(self):
        entry = {"net": net_payload(window_net(2)), "stage": "tables"}
        with pytest.raises(ServiceError) as excinfo:
            parse_batch({"jobs": [entry] * (MAX_BATCH + 1)})
        assert excinfo.value.code == "batch-too-large"
        with pytest.raises(ServiceError):
            parse_batch({"jobs": []})

    def test_parse_net_pnml(self):
        from repro.petri.io import pnml

        net = window_net(2)
        request = parse_job({"pnml": pnml.net_to_pnml(net), "stage": "tables"})
        assert net_fingerprint(request.net) == net_fingerprint(net)


# ---------------------------------------------------------------------------
# CLI smoke: the CI service step (subprocess, real socket)
# ---------------------------------------------------------------------------


@pytest.mark.timeout(120)
def test_cli_serve_smoke(tmp_path):
    """Start ``repro-tpn serve`` on an ephemeral port, submit the same net
    twice, assert the second response is served from the cache, and check a
    clean SIGINT shutdown — the CI smoke step runs exactly this test."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         environment.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--jobs",
            "2",
        ],
        env=environment,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"unexpected startup line: {line!r}"
        base = f"http://{match.group(1)}:{match.group(2)}"

        def call(method, path, payload=None):
            data = json.dumps(payload).encode() if payload is not None else None
            request = urllib.request.Request(
                base + path, data=data, method=method,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                return json.loads(response.read())

        payload = {"net": net_payload(window_net(4)), "stage": "untimed"}
        tiers = []
        for _ in range(2):
            record = call("POST", "/jobs", payload)
            deadline = time.monotonic() + 60
            while record["status"] not in TERMINAL and time.monotonic() < deadline:
                time.sleep(0.05)
                record = call("GET", f"/jobs/{record['id']}")
            assert record["status"] == "done", record
            tiers.append(record["cache"]["tier"])
        assert tiers[0] == "built"
        assert tiers[1] == "memory"
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            raise
    assert process.returncode == 0
