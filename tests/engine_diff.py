"""Shared differential-test harness: reference vs compiled vs parallel engines.

Every graph builder with a compiled backend keeps an ``engine="reference"``
escape hatch and must produce **bit-identical** graphs through every engine:
same node order, same edge order, same delays/probabilities/labels, same
rates and weights.  The untimed reachability, GSPN and *timed* reachability
builders (numeric and symbolic) additionally accept ``engine="parallel"``
(the frontier-sharded multiprocess BFS of :mod:`repro.engine.parallel`), and
the untimed and GSPN builders ``engine="batched"`` (the numpy level-batched
kernel of :mod:`repro.engine.batched`); both are held to the same
bit-identical standard — the deterministic merge
must renumber cross-process discoveries into the exact sequential FIFO
order, and for the timed construction the worker-computed edge payloads
(delays, probabilities, used-constraint labels) must match the sequential
arithmetic exactly.  This module centralizes

* the workload registry (every bundled numeric model — the three protocol
  nets plus the producer/consumer, token-ring, sliding-window, go-back-N
  and selective-repeat workloads — the timed window models, and the
  symbolic paper net), and
* the engine builders and exact graph-equality assertions for all four
  graph families (timed, untimed reachability, coverability, GSPN marking
  graph),

so ``tests/test_engine_diff.py``, ``tests/test_engine_random.py``,
``tests/test_compiled_engine.py`` and the cache-determinism gate of
``tests/test_analysis_cache.py`` (a warm artifact-cache hit must be
bit-identical to a cold build) share one comparison instead of each
growing its own copy.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.petri import coverability_graph, reachability_graph
from repro.protocols import (
    alternating_bit_net,
    go_back_n_net,
    pipelined_stop_and_wait_net,
    producer_consumer_net,
    selective_repeat_net,
    simple_protocol_net,
    simple_protocol_symbolic,
    sliding_window_net,
    token_ring_net,
)
from repro.reachability import symbolic_timed_reachability_graph, timed_reachability_graph
from repro.stochastic import GSPNAnalysis

#: Every bundled numeric workload: the three protocol nets (paper protocol,
#: alternating bit, pipelined stop-and-wait) plus the scaling models.
NUMERIC_WORKLOADS = [
    ("paper-protocol", simple_protocol_net),
    ("alternating-bit", alternating_bit_net),
    ("pipelined-stop-and-wait", lambda: pipelined_stop_and_wait_net(2)),
    ("producer-consumer", lambda: producer_consumer_net(loss_probability=Fraction(1, 5))),
    ("token-ring", lambda: token_ring_net(5)),
    ("sliding-window", lambda: sliding_window_net(2, loss_probability=Fraction(1, 10))),
    ("sliding-window-lossless", lambda: sliding_window_net(3)),
    ("go-back-n", lambda: go_back_n_net(2, loss_probability=Fraction(1, 10))),
    (
        "selective-repeat",
        lambda: selective_repeat_net(2, loss_probability=Fraction(1, 10)),
    ),
]

WORKLOAD_IDS = [label for label, _constructor in NUMERIC_WORKLOADS]

#: Workloads whose *untimed* graph is unbounded (the untimed firing rule
#: lets timeouts flood the medium); every engine must fail identically on
#: them instead of producing a graph.
UNBOUNDED_UNTIMED = frozenset(
    {"paper-protocol", "alternating-bit", "pipelined-stop-and-wait"}
)

#: Workloads for the *timed* differential check.  The lossy window models
#: matter here: their per-slot timers produce the decision-heavy graphs the
#: compiled timed engine memoizes hardest (branch probabilities, advance
#: steps), so the timed parity gate must cover them and not just the paper
#: protocol.
TIMED_WORKLOADS = [
    ("paper-protocol", simple_protocol_net),
    (
        "sliding-window-3-lossy",
        lambda: sliding_window_net(3, loss_probability=Fraction(1, 10)),
    ),
    ("go-back-n-3-lossy", lambda: go_back_n_net(3, loss_probability=Fraction(1, 10))),
    (
        "selective-repeat-3-lossy",
        lambda: selective_repeat_net(3, loss_probability=Fraction(1, 10)),
    ),
]

TIMED_WORKLOAD_IDS = [label for label, _constructor in TIMED_WORKLOADS]

#: Worker count used by the harness' parallel builds: two processes is the
#: smallest configuration that actually exercises cross-shard batching and
#: the deterministic merge.
PARALLEL_WORKERS = 2


def symbolic_workload():
    """The symbolic paper net with its Section-4 constraints."""
    net, constraints, _symbols = simple_protocol_symbolic()
    return net, constraints


# ---------------------------------------------------------------------------
# Pairwise builders
# ---------------------------------------------------------------------------


def build_timed_pair(net, **kwargs):
    """(compiled, reference) numeric timed reachability graphs."""
    return (
        timed_reachability_graph(net, engine="compiled", **kwargs),
        timed_reachability_graph(net, engine="reference", **kwargs),
    )


def build_symbolic_timed_pair(net, constraints, **kwargs):
    """(compiled, reference) symbolic timed reachability graphs."""
    return (
        symbolic_timed_reachability_graph(net, constraints, engine="compiled", **kwargs),
        symbolic_timed_reachability_graph(net, constraints, engine="reference", **kwargs),
    )


def build_timed_parallel(net, *, workers=PARALLEL_WORKERS, **kwargs):
    """The frontier-sharded numeric timed reachability graph (third engine value)."""
    return timed_reachability_graph(net, engine="parallel", workers=workers, **kwargs)


def build_symbolic_timed_parallel(net, constraints, *, workers=PARALLEL_WORKERS, **kwargs):
    """The frontier-sharded symbolic timed reachability graph (third engine value)."""
    return symbolic_timed_reachability_graph(
        net, constraints, engine="parallel", workers=workers, **kwargs
    )


def build_timed_cached_roundtrip(net, **kwargs):
    """(cold, warm) numeric timed graphs: build vs artifact-codec rehydration.

    The warm graph goes through the exact bytes a disk cache hit would read
    (:mod:`repro.analysis.codec`), so holding the pair to
    :func:`assert_timed_graphs_identical` is the cache-determinism gate.
    """
    from repro.analysis import decode_timed_graph, encode_timed_graph

    cold = timed_reachability_graph(net, **kwargs)
    return cold, decode_timed_graph(encode_timed_graph(cold), net)


def build_symbolic_timed_cached_roundtrip(net, constraints, **kwargs):
    """(cold, warm) symbolic timed graphs through the artifact codec."""
    from repro.analysis import decode_timed_graph, encode_timed_graph

    cold = symbolic_timed_reachability_graph(net, constraints, **kwargs)
    return cold, decode_timed_graph(encode_timed_graph(cold), net)


def build_untimed_pair(net, **kwargs):
    """(compiled, reference) untimed reachability graphs."""
    return (
        reachability_graph(net, engine="compiled", **kwargs),
        reachability_graph(net, engine="reference", **kwargs),
    )


def build_untimed_parallel(net, *, workers=PARALLEL_WORKERS, **kwargs):
    """The frontier-sharded untimed reachability graph (third engine value)."""
    return reachability_graph(net, engine="parallel", workers=workers, **kwargs)


def build_untimed_batched(net, **kwargs):
    """The numpy level-batched untimed reachability graph (fourth engine value)."""
    return reachability_graph(net, engine="batched", **kwargs)


def build_coverability_pair(net, **kwargs):
    """(compiled, reference) Karp–Miller coverability graphs."""
    return (
        coverability_graph(net, engine="compiled", **kwargs),
        coverability_graph(net, engine="reference", **kwargs),
    )


#: Spill thresholds the disk-store differential builds run at: spill before
#: the seed (0), spill after the first interned state (1, exercising the
#: mid-build migration of resident tables), and never spill (None, the pure
#: in-memory hybrid).  Bit-identity must hold at every point.
SPILL_THRESHOLDS = (0, 1, None)


def build_untimed_spill(net, *, engine="compiled", spill_threshold=0, **kwargs):
    """An untimed reachability graph built through the disk-backed store."""
    return reachability_graph(
        net, engine=engine, store="disk", spill_threshold=spill_threshold, **kwargs
    )


def build_coverability_spill(net, *, spill_threshold=0, **kwargs):
    """A Karp–Miller coverability graph built through the disk-backed store."""
    return coverability_graph(
        net, store="disk", spill_threshold=spill_threshold, **kwargs
    )


def build_gspn_spill(net, *, engine="compiled", spill_threshold=0, **kwargs):
    """A GSPN analysis built through the disk-backed store (not yet solved)."""
    return GSPNAnalysis(
        net, engine=engine, store="disk", spill_threshold=spill_threshold, **kwargs
    )


def build_gspn_pair(net, **kwargs):
    """(compiled, reference) GSPN analyses (not yet solved)."""
    return (
        GSPNAnalysis(net, engine="compiled", **kwargs),
        GSPNAnalysis(net, engine="reference", **kwargs),
    )


def build_gspn_parallel(net, *, workers=PARALLEL_WORKERS, **kwargs):
    """The frontier-sharded GSPN analysis (third engine value, not yet solved)."""
    return GSPNAnalysis(net, engine="parallel", workers=workers, **kwargs)


def build_gspn_batched(net, **kwargs):
    """The numpy level-batched GSPN analysis (fourth engine value, not yet solved)."""
    return GSPNAnalysis(net, engine="batched", **kwargs)


# ---------------------------------------------------------------------------
# Interrupt / resume builders
# ---------------------------------------------------------------------------
#
# The robustness gate: a build interrupted at an arbitrary point and resumed
# from its checkpoint must be bit-identical to a cold build, through the
# same assertions below.  ``build`` is a one-argument callable receiving the
# RunControl (e.g. ``lambda control: reachability_graph(net, control=control,
# ...)``) so every store-capable builder plugs into the same two drivers.


def interrupt_and_resume(
    build, *, checkpoint_dir, expire_after, resume_budget=25, max_rounds=400
):
    """Deadline-interrupt ``build(control)`` after ``expire_after`` clock
    readings (deterministic via :class:`~repro.engine.faults.SteppingClock`),
    then resume the checkpoint chain to completion.

    Returns ``(artifact, interrupted)``; ``interrupted`` is False when the
    build finished inside the budget (callers asserting interruption should
    pick a smaller ``expire_after``).  Each resume round runs under its own
    stepping deadline of ``resume_budget`` readings, so large workloads
    converge in bounded rounds while small ones still chain several
    interruptions; ``max_rounds`` guards against a chain that stops making
    progress.
    """
    from repro.engine.faults import SteppingClock
    from repro.engine.runtime import RunControl, resume
    from repro.exceptions import BuildInterruptedError

    def fresh_control(budget):
        return RunControl(
            deadline=float(budget),
            checkpoint_dir=checkpoint_dir,
            clock=SteppingClock(),
        )

    try:
        return build(fresh_control(expire_after)), False
    except BuildInterruptedError as error:
        assert error.checkpoint is not None, "interrupted build left no checkpoint"
        checkpoint = error.checkpoint
    last_cursor = -1
    for _ in range(max_rounds):
        assert checkpoint.cursor > last_cursor, "resume made no progress"
        last_cursor = checkpoint.cursor
        try:
            return resume(checkpoint, control=fresh_control(resume_budget)), True
        except BuildInterruptedError as error:
            assert error.checkpoint is not None
            checkpoint = error.checkpoint
    raise AssertionError(f"no convergence after {max_rounds} resume rounds")


def crash_and_resume(build, *, checkpoint_dir, crash_at, checkpoint_every=1):
    """Hard-crash ``build(control)`` at expansion ``crash_at`` (injected
    :class:`~repro.engine.faults.InjectedFailure`, simulating a process
    kill: no final checkpoint) and complete from the last *periodic*
    checkpoint.  ``crash_at`` must be >= ``checkpoint_every + 1`` so at
    least one periodic manifest exists.  Returns the resumed artifact.
    """
    from repro.engine import faults
    from repro.engine.faults import FaultPlan, InjectedFailure
    from repro.engine.runtime import Checkpoint, RunControl, resume

    control = RunControl(
        checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir
    )
    with faults.inject(FaultPlan(crash_at_expansion=crash_at)):
        try:
            build(control)
        except InjectedFailure:
            pass
        else:
            raise AssertionError(
                f"build finished before the injected crash at {crash_at}"
            )
    return resume(Checkpoint.load(checkpoint_dir))


# ---------------------------------------------------------------------------
# Exact-equality assertions
# ---------------------------------------------------------------------------


def timed_edge_payloads(graph):
    """Everything observable on a timed edge, for exact comparison."""
    return [
        (
            edge.source,
            edge.target,
            edge.delay,
            edge.probability,
            edge.fired,
            edge.completed,
            edge.kind,
            edge.used_constraints,
        )
        for edge in graph.edges
    ]


def assert_timed_graphs_identical(compiled, reference):
    """Bit-identical timed reachability graphs (numeric or symbolic)."""
    assert compiled.state_count == reference.state_count
    assert compiled.edge_count == reference.edge_count
    assert compiled.initial_index == reference.initial_index
    assert [node.state for node in compiled.nodes] == [node.state for node in reference.nodes]
    assert timed_edge_payloads(compiled) == timed_edge_payloads(reference)
    assert compiled.state_table() == reference.state_table()
    assert compiled.edge_table() == reference.edge_table()
    assert sorted(compiled.index_of.values()) == sorted(reference.index_of.values())


def assert_untimed_graphs_identical(compiled, reference):
    """Bit-identical untimed reachability graphs."""
    assert compiled.state_count == reference.state_count
    assert compiled.edge_count == reference.edge_count
    assert compiled.markings == reference.markings
    assert compiled.edges == reference.edges
    assert compiled.index_of == reference.index_of
    for index in range(compiled.state_count):
        assert compiled.successors(index) == reference.successors(index)
    assert compiled.max_tokens_per_place() == reference.max_tokens_per_place()
    assert compiled.dead_markings() == reference.dead_markings()
    assert compiled.fired_transitions() == reference.fired_transitions()


def assert_coverability_graphs_identical(compiled, reference):
    """Bit-identical Karp–Miller coverability graphs."""
    assert compiled.node_count == reference.node_count
    assert [node.vector for node in compiled.nodes] == [node.vector for node in reference.nodes]
    assert compiled.edges == reference.edges
    assert compiled.index_of == reference.index_of
    assert compiled.is_bounded() == reference.is_bounded()
    assert compiled.unbounded_places() == reference.unbounded_places()


def assert_gspn_explorations_identical(compiled_analysis, reference_analysis):
    """Bit-identical GSPN marking graphs (markings, edges, vanishing set)."""
    compiled_markings, compiled_edges, compiled_vanishing = compiled_analysis._explore()
    reference_markings, reference_edges, reference_vanishing = reference_analysis._explore()
    assert compiled_markings == reference_markings
    assert compiled_edges == reference_edges
    assert compiled_vanishing == reference_vanishing


def assert_gspn_results_identical(compiled_result, reference_result):
    """Bit-identical stationary GSPN results (same exploration → same CTMC)."""
    assert compiled_result.tangible_markings == reference_result.tangible_markings
    assert np.array_equal(compiled_result.stationary, reference_result.stationary)
    assert compiled_result.throughput == reference_result.throughput
    assert compiled_result.utilization == reference_result.utilization
