"""Disk-backed state store and early-terminating query layer.

Three concerns share this module:

* **DiskStateStore unit behavior** — intern/append/lookup semantics through
  the hybrid memory/SQLite store, spilling at thresholds 0 and 1, telemetry,
  argument validation, and the crash-then-reopen path
  (:meth:`~repro.engine.store.DiskStateStore.open` over an abandoned spool);
* **spill determinism** — full builds through every store-capable engine
  (compiled/batched untimed, Karp–Miller coverability, compiled/batched
  GSPN) must be bit-identical to the in-memory builds at every spill
  threshold (0, 1, never), via the shared :mod:`engine_diff` assertions;
* **queries** — ``is_reachable`` / ``bound_check`` / ``find_deadlock`` /
  ``search`` early exit (the ISSUE acceptance check: a witness is returned
  after exploring *measurably fewer* states than the full build on a
  workload whose graph exceeds the spill threshold), replayable witness
  paths, definitive negative answers, and the ``query`` CLI subcommand.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from engine_diff import (
    NUMERIC_WORKLOADS,
    SPILL_THRESHOLDS,
    UNBOUNDED_UNTIMED,
    assert_coverability_graphs_identical,
    assert_gspn_explorations_identical,
    assert_untimed_graphs_identical,
    build_coverability_spill,
    build_gspn_pair,
    build_gspn_spill,
    build_untimed_pair,
    build_untimed_spill,
)
from repro.cli import main
from repro.engine import (
    DiskStateStore,
    QueryResult,
    bound_check,
    find_deadlock,
    is_reachable,
    resolve_store,
    search,
)
from repro.exceptions import PerformanceError, UnboundedNetError
from repro.petri import coverability_graph, reachability_graph
from repro.petri.multiset import Multiset
from repro.petri.net import Place, TimedPetriNet, Transition
from repro.protocols import (
    simple_protocol_net,
    simple_protocol_symbolic,
    sliding_window_net,
    token_ring_net,
)

#: Bounded workloads for the spill-determinism sweep (a representative
#: subset; the full catalog runs through the in-memory engines in
#: ``test_engine_diff.py`` and the randomized companion already).
SPILL_WORKLOADS = [
    (label, constructor)
    for label, constructor in NUMERIC_WORKLOADS
    if label in {"producer-consumer", "token-ring", "sliding-window-lossless"}
]
SPILL_WORKLOAD_IDS = [label for label, _ in SPILL_WORKLOADS]

#: Workloads for the coverability spill sweep — includes the unbounded
#: protocol nets, whose ω-vectors exercise the canonical-tuple encoding the
#: pickled-blob dedup depends on.
COVERABILITY_SPILL_WORKLOADS = [
    (label, constructor)
    for label, constructor in NUMERIC_WORKLOADS
    if label in UNBOUNDED_UNTIMED or label == "token-ring"
]
COVERABILITY_SPILL_IDS = [label for label, _ in COVERABILITY_SPILL_WORKLOADS]


def gated_toggle_net(width: int = 8) -> TimedPetriNet:
    """``width`` independent toggles gated by a ``run`` token, plus a
    ``halt`` transition that consumes it.

    While ``run`` is marked every toggle can flip freely, so the live
    portion of the space is the full :math:`2^{width}` product; firing
    ``halt`` (enabled from the very first marking, i.e. BFS depth 1)
    disables everything — an immediate reachable deadlock in a state space
    of :math:`2^{width+1}` markings.  This is the query layer's favorite
    shape: the full build is big, the witness is shallow.
    """
    places = [Place("run", "")]
    marking = {"run": 1}
    transitions = [
        Transition(name="halt", inputs=Multiset({"run": 1}), outputs=Multiset({}))
    ]
    for i in range(width):
        places += [Place(f"on_{i}", ""), Place(f"off_{i}", "")]
        marking[f"on_{i}"] = 1
        transitions += [
            Transition(
                name=f"flip_off_{i}",
                inputs=Multiset({f"on_{i}": 1, "run": 1}),
                outputs=Multiset({f"off_{i}": 1, "run": 1}),
            ),
            Transition(
                name=f"flip_on_{i}",
                inputs=Multiset({f"off_{i}": 1, "run": 1}),
                outputs=Multiset({f"on_{i}": 1, "run": 1}),
            ),
        ]
    return TimedPetriNet("gated-toggles", places, transitions, marking)


class TestDiskStateStore:
    """Unit behavior of the hybrid memory/SQLite store."""

    def test_intern_and_dedup_in_memory(self):
        with DiskStateStore(spill_threshold=None) as store:
            assert store.intern((1, 2)) == (0, True)
            assert store.intern((3, 4)) == (1, True)
            assert store.intern((1, 2)) == (0, False)
            assert len(store) == 2
            assert store.index_of((3, 4)) == 1
            assert store.index_of((9, 9)) is None
            assert not store.spilled
            assert store.spill_bytes() == 0

    def test_item_log_in_memory(self):
        with DiskStateStore(spill_threshold=None) as store:
            assert store.append_item("a") == 0
            assert store.append_item(("b", 1)) == 1
            assert store.item_at(0) == "a"
            assert store.item_at(1) == ("b", 1)
            assert list(store.items_range(0, 2)) == ["a", ("b", 1)]
            with pytest.raises(IndexError):
                store.item_at(2)

    @pytest.mark.parametrize("threshold", [0, 1])
    def test_spill_preserves_semantics(self, threshold):
        with DiskStateStore(spill_threshold=threshold) as store:
            keys = [(i, i % 3) for i in range(25)]
            for expected, key in enumerate(keys):
                assert store.intern(key) == (expected, True)
            # Re-interning after the spill must dedup against the shards.
            for expected, key in enumerate(keys):
                assert store.intern(key) == (expected, False)
            for index, key in enumerate(keys):
                assert store.append_item((key, index)) == index
            assert store.spilled
            assert len(store) == 25
            assert store.item_count == 25
            assert store.item_at(7) == (keys[7], 7)
            assert list(store.items_range(3, 6)) == [(keys[i], i) for i in (3, 4, 5)]
            store.flush()
            assert store.spill_bytes() > 0
            stats = store.stats()
            assert stats["states"] == 25
            assert stats["items"] == 25
            assert stats["spilled"] is True
            assert stats["shards"] == store.shards

    def test_mixed_int_float_keys_dedup_like_a_dict(self):
        # hash((5, 0)) == hash((5.0, 0.0)) in Python, but their pickles
        # differ — the store's contract is dict-equality, which is why the
        # coverability kernel canonicalizes vectors before interning.
        # The store itself documents blob identity: equal-but-differently-
        # typed keys intern separately once spilled, so callers must
        # canonicalize (this pins the behavior the kernel compensates for).
        with DiskStateStore(spill_threshold=0) as store:
            store.intern((5, 0))
            index, is_new = store.intern((5.0, 0.0))
            assert is_new
            assert index == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DiskStateStore(shards=0)
        with pytest.raises(ValueError):
            DiskStateStore(spill_threshold=-1)

    def test_resolve_store(self):
        assert resolve_store(None) == (None, False)
        with DiskStateStore(spill_threshold=None) as store:
            assert resolve_store(store) == (store, False)
        resolved, owned = resolve_store("disk", spill_threshold=3)
        try:
            assert owned
            assert resolved.spill_threshold == 3
        finally:
            resolved.close()
        with pytest.raises(ValueError):
            resolve_store("ram")

    def test_crash_then_reopen(self, tmp_path):
        spool = tmp_path / "spool"
        store = DiskStateStore(str(spool), spill_threshold=0)
        keys = [(i,) for i in range(10)]
        for key in keys:
            store.intern(key)
            store.append_item((key, "payload"))
        store.flush()
        # Simulate a crash: abandon the store without close() — the spool
        # directory survives because an explicit path is never self-cleaned.
        del store

        reopened = DiskStateStore.open(str(spool))
        try:
            assert reopened.spilled
            assert len(reopened) == 10
            assert reopened.item_count == 10
            assert reopened.item_at(4) == ((4,), "payload")
            # Existing keys dedup against the recovered shards; new keys
            # continue the index sequence.
            assert reopened.intern((3,)) == (3, False)
            assert reopened.intern((99,)) == (10, True)
        finally:
            reopened.close()
        # close() on a reopened explicit path keeps the spool on disk.
        assert spool.is_dir()

    def test_open_missing_spool(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DiskStateStore.open(str(tmp_path / "nowhere"))


class TestSpillDeterminism:
    """Full builds through the store are bit-identical at every threshold."""

    @pytest.mark.parametrize("threshold", SPILL_THRESHOLDS, ids=["t0", "t1", "never"])
    @pytest.mark.parametrize("label,constructor", SPILL_WORKLOADS, ids=SPILL_WORKLOAD_IDS)
    def test_untimed_compiled(self, label, constructor, threshold):
        compiled, _reference = build_untimed_pair(constructor())
        spilled = build_untimed_spill(constructor(), spill_threshold=threshold)
        assert_untimed_graphs_identical(spilled, compiled)

    @pytest.mark.parametrize("threshold", SPILL_THRESHOLDS, ids=["t0", "t1", "never"])
    @pytest.mark.parametrize("label,constructor", SPILL_WORKLOADS, ids=SPILL_WORKLOAD_IDS)
    def test_untimed_batched(self, label, constructor, threshold):
        compiled, _reference = build_untimed_pair(constructor())
        spilled = build_untimed_spill(
            constructor(), engine="batched", spill_threshold=threshold
        )
        assert_untimed_graphs_identical(spilled, compiled)

    @pytest.mark.parametrize("threshold", SPILL_THRESHOLDS, ids=["t0", "t1", "never"])
    @pytest.mark.parametrize(
        "label,constructor", COVERABILITY_SPILL_WORKLOADS, ids=COVERABILITY_SPILL_IDS
    )
    def test_coverability(self, label, constructor, threshold):
        baseline = coverability_graph(constructor(), engine="compiled")
        spilled = build_coverability_spill(constructor(), spill_threshold=threshold)
        assert_coverability_graphs_identical(spilled, baseline)

    @pytest.mark.parametrize("threshold", SPILL_THRESHOLDS, ids=["t0", "t1", "never"])
    @pytest.mark.parametrize("label,constructor", SPILL_WORKLOADS, ids=SPILL_WORKLOAD_IDS)
    @pytest.mark.parametrize("engine", ["compiled", "batched"])
    def test_gspn(self, label, constructor, threshold, engine):
        compiled, _reference = build_gspn_pair(constructor())
        spilled = build_gspn_spill(
            constructor(), engine=engine, spill_threshold=threshold
        )
        assert_gspn_explorations_identical(spilled, compiled)

    def test_spill_telemetry_in_build_stats(self):
        graph = build_untimed_spill(sliding_window_net(3), spill_threshold=0)
        stats = graph.build_stats()
        assert stats.spilled_states == graph.state_count
        assert stats.spill_bytes > 0
        in_memory = reachability_graph(sliding_window_net(3))
        assert in_memory.build_stats().spilled_states == 0
        assert in_memory.build_stats().spill_bytes == 0

    def test_store_rejected_off_the_frontier_core(self):
        with pytest.raises(ValueError, match="frontier-core"):
            reachability_graph(token_ring_net(3), engine="reference", store="disk")
        with pytest.raises(ValueError, match="frontier-core"):
            reachability_graph(token_ring_net(3), engine="parallel", store="disk")


class TestQueries:
    """Early exit, witness paths, and definitive negatives."""

    def test_is_reachable_early_exit_under_spill(self):
        # The ISSUE acceptance check: on a workload whose full graph
        # exceeds the spill threshold, the query returns a correct witness
        # while exploring measurably fewer states than a full build.
        net = sliding_window_net(3)
        full = reachability_graph(net)
        threshold = 8
        assert full.state_count > threshold  # 64 markings
        target = full.markings[1]  # the first BFS discovery — depth 1
        result = is_reachable(net, target, store="disk", spill_threshold=threshold)
        assert result.found
        assert result.witness == target
        assert result.witness_depth == len(result.path) == 1
        assert result.states_explored < full.state_count // 2
        assert result.replay(sliding_window_net(3)) == target

    def test_find_deadlock_early_exit_under_spill(self):
        net = gated_toggle_net(8)
        full = reachability_graph(net)
        assert full.state_count == 2 ** 9  # live product + halted copies
        result = find_deadlock(net, store="disk", spill_threshold=16)
        assert result.found
        assert result.path == ("halt",)
        assert result.states_explored < full.state_count // 2
        replayed = result.replay(gated_toggle_net(8))
        assert replayed == result.witness
        assert not net.enabled_transitions(replayed)

    def test_unreachable_is_a_full_exploration(self):
        net = token_ring_net(5)
        full = reachability_graph(net)
        impossible = {"has_token_0": 1, "has_token_1": 1}
        result = is_reachable(net, impossible)
        assert not result.found
        assert result.witness is None
        assert result.witness_depth is None
        assert result.states_explored == full.state_count
        with pytest.raises(ValueError, match="no witness"):
            result.replay(net)

    def test_deadlock_free_net_is_a_full_exploration(self):
        net = token_ring_net(5)
        full = reachability_graph(net)
        result = find_deadlock(net)
        assert not result.found
        assert result.states_explored == full.state_count
        assert full.is_deadlock_free()

    def test_bound_check_both_verdicts(self):
        net = token_ring_net(4)
        violated = bound_check(net, "has_token_0", 0)
        assert violated.found
        assert violated.path == ()  # the initial marking already exceeds 0
        proven = bound_check(net, "has_token_0", 1)
        assert not proven.found
        assert proven.states_explored == reachability_graph(net).state_count
        with pytest.raises(ValueError, match="unknown place"):
            bound_check(net, "nonexistent", 1)

    def test_search_predicate(self):
        net = gated_toggle_net(4)
        result = search(net, lambda marking: marking["off_2"] > 0)
        assert result.found
        assert result.path == ("flip_off_2",)
        assert result.witness["off_2"] == 1

    def test_query_results_identical_with_and_without_spill(self):
        net = gated_toggle_net(6)
        in_memory = find_deadlock(net)
        spilled = find_deadlock(net, store="disk", spill_threshold=0)
        assert spilled.found == in_memory.found
        assert spilled.path == in_memory.path
        assert spilled.witness == in_memory.witness
        assert spilled.states_explored == in_memory.states_explored
        assert spilled.spill_bytes > 0 and in_memory.spill_bytes == 0

    def test_target_validation(self):
        net = token_ring_net(3)
        with pytest.raises(ValueError, match="unknown place"):
            is_reachable(net, {"not_a_place": 1})
        with pytest.raises(TypeError, match="Marking or a place->count"):
            is_reachable(net, [1, 0, 0])

    def test_symbolic_net_rejected(self):
        net, _constraints, _symbols = simple_protocol_symbolic()
        with pytest.raises(PerformanceError, match="numeric net"):
            find_deadlock(net)

    def test_max_states_valve(self):
        with pytest.raises(UnboundedNetError):
            is_reachable(simple_protocol_net(), {"p1": 999}, max_states=50)

    def test_as_dict(self):
        result = find_deadlock(gated_toggle_net(3))
        payload = result.as_dict()
        assert payload["found"] is True
        assert payload["witness_depth"] == 1
        assert payload["path"] == ["halt"]
        assert payload["states_explored"] == result.states_explored
        assert isinstance(result, QueryResult)


class TestQueryCli:
    """The ``query`` subcommand and the ``untimed`` store flags."""

    def test_query_deadlock_not_found(self, capsys):
        assert main(["query", "--model", "token-ring", "--deadlock"]) == 0
        output = capsys.readouterr().out
        assert "deadlock reachable?" in output
        assert "answer: no" in output

    def test_query_reachable_with_stats(self, capsys):
        spec = "has_token_1=1"
        for i in (0, 2):
            spec += f",has_token_{i}=0,passing_{i}=0"
        spec += ",passing_1=0"
        code = main(
            ["query", "--model", "token-ring", "--reachable", spec, "--stats"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "answer: yes" in output
        assert "path: " in output and " -> " in output
        assert "states explored" in output
        assert "witness depth" in output

    def test_query_bound_with_spill(self, capsys, tmp_path):
        code = main(
            [
                "query", "--model", "token-ring",
                "--bound", "has_token_0=0",
                "--store", "disk",
                "--spill-threshold", "0",
                "--store-dir", str(tmp_path / "spool"),
                "--stats",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "answer: yes" in output
        assert "(initial marking)" in output

    def test_query_argument_errors(self):
        with pytest.raises(SystemExit):
            main(["query", "--model", "token-ring", "--reachable", "garbage"])
        with pytest.raises(SystemExit):
            main(["query", "--model", "token-ring", "--bound", "a=1,b=2"])
        with pytest.raises(SystemExit):
            main(["query", "--model", "token-ring", "--deadlock", "--spill-threshold", "5"])

    def test_untimed_store_flags(self, capsys):
        code = main(
            [
                "untimed", "--model", "token-ring",
                "--engine", "batched",
                "--store", "disk",
                "--spill-threshold", "1",
                "--stats",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "spilled states" in output
        assert "spill bytes" in output
