"""Tests for the performance-derivation layer: linear solver, traversal rates,
metrics, the Markov cross-check, sensitivities and the high-level API.

The headline assertions reproduce the paper's Section 4: the traversal-rate
solution of Figure 8 and the closed-form throughput at 5 % loss.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import NotErgodicError, PerformanceError
from repro.performance import (
    PerformanceAnalysis,
    PerformanceMetrics,
    analyze,
    elasticity,
    embedded_chain_analysis,
    evaluate_gradient,
    finite_difference,
    gradient,
    partial_derivative,
    solve_linear_system,
    solve_stationary_weights,
    traversal_rates,
)
from repro.protocols import (
    PAPER_THROUGHPUT,
    paper_bindings,
    paper_throughput_expression_value,
    producer_consumer_net,
    simple_protocol_net,
    token_ring_net,
)
from repro.symbolic import RatFunc, evaluate_value


class TestLinearSolver:
    def test_simple_system(self):
        solution = solve_linear_system(
            [[Fraction(2), Fraction(1)], [Fraction(1), Fraction(3)]],
            [Fraction(5), Fraction(10)],
        )
        assert solution == [Fraction(1), Fraction(3)]

    def test_singular_system_rejected(self):
        with pytest.raises(PerformanceError):
            solve_linear_system(
                [[Fraction(1), Fraction(1)], [Fraction(2), Fraction(2)]],
                [Fraction(1), Fraction(2)],
            )

    def test_dimension_checks(self):
        with pytest.raises(PerformanceError):
            solve_linear_system([[Fraction(1)]], [Fraction(1), Fraction(2)])
        with pytest.raises(PerformanceError):
            solve_linear_system([[Fraction(1), Fraction(2)]], [Fraction(1)])

    def test_ratfunc_field(self):
        one = RatFunc.one()
        two = one + one
        solution = solve_linear_system([[two]], [one], zero=RatFunc.zero(), one=one)
        assert solution[0] == RatFunc.coerce(Fraction(1, 2))

    def test_stationary_weights_two_state_chain(self):
        # P = [[0, 1], [1, 0]] -> equal visit rates.
        def probability(i, j):
            return Fraction(1) if i != j else Fraction(0)

        weights = solve_stationary_weights(probability, 2)
        assert weights == [Fraction(1), Fraction(1)]

    def test_stationary_weights_biased_chain(self):
        # From 0: stay w.p. 1/2, go w.p. 1/2; from 1: always go to 0.
        table = {(0, 0): Fraction(1, 2), (0, 1): Fraction(1, 2), (1, 0): Fraction(1)}

        def probability(i, j):
            return table.get((i, j), Fraction(0))

        weights = solve_stationary_weights(probability, 2)
        assert weights[1] / weights[0] == Fraction(1, 2)


class TestTraversalRatesPaper:
    def test_reference_anchor_rate_is_one(self, paper_decision):
        rates = traversal_rates(paper_decision)
        assert rates.rate_of_node(rates.reference_anchor) == 1

    def test_figure8_relative_rates(self, paper_decision):
        """With the successful-ack edge normalized to 1 (the paper's r2 = 1),
        the loss edge has rate (1-P)/(P·A) and the ack-loss edge (1-A)/A."""
        rates = traversal_rates(paper_decision)
        success = [e for e in paper_decision.edges if e.delay == Fraction("122.2")][0]
        normalized = rates.normalized_to_edge(success)
        loss = [e for e in paper_decision.edges if e.delay == Fraction(1002)][0]
        ack_loss = [e for e in paper_decision.edges if e.delay == Fraction("881.8")][0]
        packet_ok = [e for e in paper_decision.edges if e.delay == Fraction("120.2")][0]
        P = A = Fraction(19, 20)
        assert normalized.rate_of_edge(success) == 1
        assert normalized.rate_of_edge(loss) == (1 - P) / (P * A)
        assert normalized.rate_of_edge(ack_loss) == (1 - A) / A
        assert normalized.rate_of_edge(packet_ok) == 1 / A

    def test_rates_satisfy_their_equations(self, paper_decision):
        rates = traversal_rates(paper_decision)
        for edge in paper_decision.edges:
            incoming = sum(
                rates.rate_of_edge(other) for other in paper_decision.incoming(edge.source)
            )
            assert rates.rate_of_edge(edge) == edge.probability * incoming

    def test_equations_text_mentions_every_edge(self, paper_decision):
        text = traversal_rates(paper_decision).equations_text()
        for index in range(1, 5):
            assert f"r{index}" in text

    def test_normalizing_to_zero_rate_edge_rejected(self, paper_decision):
        rates = traversal_rates(paper_decision)
        with pytest.raises(PerformanceError):
            # fabricate a rates object with a zero entry by normalizing twice
            zeroed = rates.__class__(
                decision_graph=rates.decision_graph,
                node_rates=rates.node_rates,
                edge_rates={**rates.edge_rates, 0: Fraction(0)},
                reference_anchor=rates.reference_anchor,
                symbolic=rates.symbolic,
            )
            zeroed.normalized_to_edge(0)


class TestMetricsPaper:
    def test_throughput_matches_paper_exactly(self, paper_analysis):
        assert paper_analysis.throughput("t2").value == PAPER_THROUGHPUT

    def test_throughput_general_formula(self):
        for loss in (Fraction(0), Fraction(1, 10), Fraction(3, 10)):
            net = simple_protocol_net(packet_loss_probability=loss, ack_loss_probability=loss)
            measured = PerformanceAnalysis(net).throughput("t2").value
            assert measured == paper_throughput_expression_value(packet_loss=loss, ack_loss=loss)

    def test_send_rate_exceeds_delivery_rate(self, paper_analysis):
        sends = paper_analysis.throughput("t1").value
        delivered = paper_analysis.throughput("t2").value
        assert sends > delivered  # retransmissions

    def test_loss_rate_balance(self, paper_analysis):
        # every sent packet is eventually delivered+acked, lost, or its ack is lost
        sends = paper_analysis.throughput("t1").value
        delivered = paper_analysis.throughput("t2").value
        packet_lost = paper_analysis.throughput("t5").value
        ack_lost = paper_analysis.throughput("t9").value
        assert sends == delivered + packet_lost + ack_lost

    def test_utilizations_are_probabilities_and_match_busy_time(self, paper_analysis):
        for name in ("t1", "t3", "t4", "t6", "t8"):
            utilization = paper_analysis.utilization(name).value
            assert 0 <= utilization <= 1
        # the medium carries a packet 106.7 ms out of every successful 120.2+... cycle
        assert paper_analysis.utilization("t4").value == pytest.approx(0.3203, abs=1e-3)

    def test_cycle_time(self, paper_analysis):
        cycle = paper_analysis.cycle_time().value
        shares = paper_analysis.metrics.edge_time_shares()
        assert cycle == sum(shares.values())

    def test_firings_per_cycle_counts(self, paper_analysis):
        metrics = paper_analysis.metrics
        assert metrics.firings_per_cycle("t2") == metrics.firings_per_cycle("t7")
        assert metrics.firings_per_cycle("t1") > metrics.firings_per_cycle("t2")

    def test_report_bundle(self, paper_analysis):
        report = paper_analysis.report(["t1", "t2"])
        assert set(report.throughput) == {"t1", "t2"}
        assert report.cycle_time == paper_analysis.cycle_time().value

    def test_token_ring_cycle_time(self):
        analysis = PerformanceAnalysis(token_ring_net(4, hold_time=10, pass_time=2))
        assert analysis.cycle_time().value == 4 * 12
        assert analysis.throughput("transmit_0").value == Fraction(1, 48)

    def test_producer_consumer_bottleneck(self):
        analysis = PerformanceAnalysis(producer_consumer_net(production_time=5, consumption_time=8))
        # the consumer (8 time units per item) is the bottleneck
        assert analysis.throughput("finish_consume").value == Fraction(1, 8)
        assert analysis.utilization("finish_consume").value == 1


class TestMarkovCrossCheck:
    def test_matches_traversal_method_on_paper_protocol(self, paper_analysis, paper_decision):
        embedded = embedded_chain_analysis(paper_decision)
        assert embedded.throughput(paper_decision, "t2") == PAPER_THROUGHPUT
        assert sum(embedded.stationary.values()) == 1

    def test_matches_on_swept_loss_rates(self):
        for loss in (Fraction(1, 100), Fraction(1, 4)):
            analysis = PerformanceAnalysis(simple_protocol_net(packet_loss_probability=loss))
            embedded = analysis.embedded_chain()
            assert embedded.throughput(analysis.decision, "t2") == analysis.throughput("t2").value

    def test_mean_cycle_time_consistency(self, paper_analysis):
        embedded = paper_analysis.embedded_chain()
        # stationary-weighted sojourn equals cycle time divided by visits per cycle
        visits = sum(paper_analysis.rates.node_rates.values())
        assert embedded.mean_cycle_time == paper_analysis.cycle_time().value / visits


class TestSymbolicPerformance:
    def test_symbolic_throughput_specializes_to_paper_value(self, symbolic_analysis):
        value = symbolic_analysis.throughput("t2").evaluate(paper_bindings())
        assert value == PAPER_THROUGHPUT

    def test_symbolic_expression_is_compact(self, symbolic_analysis):
        expression = symbolic_analysis.throughput("t2").value
        assert isinstance(expression, RatFunc)
        assert len(expression.numerator.terms) == 1  # f4 * f8
        assert len(expression.denominator.terms) == 15

    def test_symbolic_matches_numeric_across_loss_rates(self, symbolic_analysis):
        for loss in (Fraction(1, 50), Fraction(1, 5)):
            bindings = paper_bindings(packet_loss=loss, ack_loss=loss)
            symbolic_value = symbolic_analysis.throughput("t2").evaluate(bindings)
            numeric = PerformanceAnalysis(
                simple_protocol_net(packet_loss_probability=loss, ack_loss_probability=loss)
            ).throughput("t2").value
            assert symbolic_value == numeric

    def test_specialized_analysis_round_trip(self, symbolic_analysis):
        numeric = symbolic_analysis.specialized(paper_bindings())
        assert numeric.state_count() == symbolic_analysis.state_count()
        assert numeric.throughput("t2").value == PAPER_THROUGHPUT

    def test_symbolic_cycle_time_positive_at_sample_point(self, symbolic_analysis, symbolic_protocol):
        _net, constraints, _symbols = symbolic_protocol
        point = constraints.sample_point()
        # add frequency bindings (not constrained): all 1
        for symbol in symbolic_analysis.throughput("t2").symbols():
            point.setdefault(symbol, Fraction(1))
        assert symbolic_analysis.cycle_time().evaluate(point) > 0


class TestSensitivity:
    def test_partial_derivative_signs(self, symbolic_analysis, symbolic_protocol):
        _net, _constraints, symbols = symbolic_protocol
        throughput = symbolic_analysis.throughput("t2").value
        bindings = paper_bindings()
        for time_symbol_name in ("F4", "F6", "E3"):
            derivative = partial_derivative(throughput, symbols[time_symbol_name])
            assert derivative.evaluate(bindings) < 0  # longer delays always hurt

    def test_gradient_and_elasticity(self, symbolic_analysis, symbolic_protocol):
        _net, _constraints, symbols = symbolic_protocol
        throughput = symbolic_analysis.throughput("t2").value
        bindings = paper_bindings()
        grad = evaluate_gradient(throughput, bindings, [symbols["F4"], symbols["E3"]])
        assert set(grad) == {symbols["F4"], symbols["E3"]}
        packet_elasticity = elasticity(throughput, symbols["F4"]).evaluate(bindings)
        timeout_elasticity = elasticity(throughput, symbols["E3"]).evaluate(bindings)
        assert packet_elasticity < 0 and timeout_elasticity < 0
        assert gradient(throughput, [symbols["F4"]])[symbols["F4"]].evaluate(bindings) == grad[symbols["F4"]]

    def test_finite_difference_matches_exact_derivative(self, symbolic_analysis, symbolic_protocol):
        _net, _constraints, symbols = symbolic_protocol
        throughput = symbolic_analysis.throughput("t2").value
        bindings = paper_bindings()
        exact = partial_derivative(throughput, symbols["F4"]).evaluate(bindings)

        def measure(value):
            point = dict(bindings)
            point[symbols["F4"]] = value
            return throughput.evaluate(point)

        approximate = finite_difference(measure, bindings[symbols["F4"]])
        assert float(approximate) == pytest.approx(float(exact), rel=1e-4)


class TestHighLevelApi:
    def test_analyze_convenience(self, paper_net):
        analysis = analyze(paper_net)
        assert analysis.state_count() == 18

    def test_symbolic_net_without_constraints_rejected(self, symbolic_protocol):
        net, _constraints, _symbols = symbolic_protocol
        with pytest.raises(PerformanceError):
            PerformanceAnalysis(net)

    def test_unknown_transition_rejected(self, paper_analysis):
        from repro.exceptions import NetDefinitionError

        with pytest.raises(NetDefinitionError):
            paper_analysis.throughput("nope")

    def test_absorbing_model_raises_not_ergodic(self):
        from repro.petri import NetBuilder

        builder = NetBuilder("absorbing")
        builder.transition("step", inputs=["p"], outputs=["q"], firing_time=1)
        builder.mark("p")
        with pytest.raises(NotErgodicError):
            PerformanceAnalysis(builder.build())

    def test_expression_objects(self, paper_analysis):
        expression = paper_analysis.throughput("t2")
        assert not expression.is_symbolic
        assert expression.symbols() == frozenset()
        assert "throughput" in expression.render()
        assert expression.evaluate_float() == pytest.approx(float(PAPER_THROUGHPUT))

    def test_metrics_reuse_precomputed_rates(self, paper_decision):
        rates = traversal_rates(paper_decision)
        metrics = PerformanceMetrics(paper_decision, rates)
        assert metrics.throughput("t2") == PAPER_THROUGHPUT
