"""Tests for the discrete-event simulator, the GSPN baseline and the Time Petri Net
translation (experiments E2, E10 and E14 in miniature)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import DeadlockError, SimulationError
from repro.performance import PerformanceAnalysis
from repro.petri import NetBuilder
from repro.protocols import (
    PAPER_THROUGHPUT,
    producer_consumer_net,
    simple_protocol_net,
    simple_protocol_symbolic,
    token_ring_net,
)
from repro.reachability import timed_reachability_graph
from repro.simulation import (
    BatchMeans,
    Deterministic,
    Exponential,
    TimedNetSimulator,
    Uniform,
    as_distribution,
    simulate,
)
from repro.stochastic import GSPNAnalysis, gspn_throughput
from repro.timenet import state_class_graph, timed_to_time_petri_net


class TestDistributions:
    def test_deterministic(self):
        import numpy as np

        rng = np.random.default_rng(0)
        dist = Deterministic(Fraction("106.7"))
        assert dist.sample(rng) == pytest.approx(106.7)
        assert dist.mean() == pytest.approx(106.7)

    def test_uniform_bounds_and_mean(self):
        import numpy as np

        rng = np.random.default_rng(0)
        dist = Uniform(2, 4)
        samples = [dist.sample(rng) for _ in range(200)]
        assert all(2 <= value <= 4 for value in samples)
        assert dist.mean() == 3

    def test_exponential_mean(self):
        import numpy as np

        rng = np.random.default_rng(0)
        dist = Exponential(10)
        samples = [dist.sample(rng) for _ in range(3000)]
        assert sum(samples) / len(samples) == pytest.approx(10, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Deterministic(-1)
        with pytest.raises(ValueError):
            Uniform(3, 2)
        with pytest.raises(ValueError):
            Exponential(0)

    def test_as_distribution(self):
        assert isinstance(as_distribution(5), Deterministic)
        dist = Uniform(1, 2)
        assert as_distribution(dist) is dist


class TestSimulator:
    def test_deterministic_token_ring_rate_is_exact(self):
        net = token_ring_net(3, hold_time=10, pass_time=2)
        result = simulate(net, horizon=3600, seed=1)
        # the cycle time is exactly 36, so each transmit fires 100 times
        assert len(result.event_times["transmit_0"]) == 100

    def test_simulated_throughput_converges_to_analytic(self):
        net = simple_protocol_net()
        result = simulate(net, horizon=400_000, seed=7)
        interval = result.throughput_interval("t2")
        assert interval.contains(float(PAPER_THROUGHPUT))
        assert result.throughput("t2") == pytest.approx(float(PAPER_THROUGHPUT), rel=0.08)

    def test_simulated_utilization_close_to_analytic(self, paper_analysis):
        result = simulate(simple_protocol_net(), horizon=200_000, seed=3)
        assert result.utilization("t4") == pytest.approx(
            float(paper_analysis.utilization("t4").value), abs=0.03
        )

    def test_reproducibility(self):
        net = simple_protocol_net()
        first = simulate(net, horizon=20_000, seed=42)
        second = simulate(net, horizon=20_000, seed=42)
        assert first.event_times == second.event_times
        third = simulate(net, horizon=20_000, seed=43)
        assert first.event_times != third.event_times

    def test_trace_recording(self):
        result = simulate(token_ring_net(2), horizon=100, record_trace=True)
        assert result.trace
        kinds = {event.kind for event in result.trace}
        assert kinds == {"start", "complete"}

    def test_deadlock_handling(self):
        builder = NetBuilder("dead")
        builder.transition("once", inputs=["p"], outputs=[], firing_time=1)
        builder.mark("p")
        net = builder.build()
        result = simulate(net, horizon=100)
        assert result.deadlocked
        simulator = TimedNetSimulator(net)
        with pytest.raises(DeadlockError):
            simulator.run(100, stop_on_deadlock=True)

    def test_symbolic_net_rejected(self):
        net, _constraints, _symbols = simple_protocol_symbolic()
        with pytest.raises(SimulationError):
            TimedNetSimulator(net)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            simulate(simple_protocol_net(), horizon=0)

    def test_enabling_time_respected(self):
        # A single timeout transition: nothing can complete before E(t)=50.
        builder = NetBuilder("timer")
        builder.transition("fire", inputs=["p"], outputs=["q"], enabling_time=50, firing_time=1)
        builder.mark("p")
        result = simulate(builder.build(), horizon=200, record_trace=True)
        assert result.event_times["fire"][0] == pytest.approx(51)

    def test_exponential_override_changes_behaviour(self):
        net = simple_protocol_net()
        exponential = simulate(
            net,
            horizon=100_000,
            seed=11,
            firing_distributions={"t4": Exponential(Fraction("106.7")), "t8": Exponential(Fraction("106.7"))},
        )
        deterministic = simulate(net, horizon=100_000, seed=11)
        assert exponential.throughput("t2") != deterministic.throughput("t2")

    def test_batch_means_interval(self):
        interval = BatchMeans(10, 0.95).interval([float(i) for i in range(1, 1000)], horizon=1000.0)
        assert interval.estimate == pytest.approx(1.0, rel=0.05)
        assert interval.low <= interval.estimate <= interval.high
        assert "±" in str(interval)

    def test_statistics_summary_shape(self):
        result = simulate(token_ring_net(2), horizon=500)
        summary = result.statistics.summary()
        assert set(summary) == {"firing_rate", "utilization", "mean_tokens"}


class TestGspnBaseline:
    def test_producer_consumer_gspn(self):
        net = producer_consumer_net(production_time=5, transfer_time=1, consumption_time=5)
        result = GSPNAnalysis(net).solve()
        assert abs(sum(result.stationary) - 1) < 1e-9
        assert result.throughput["finish_consume"] > 0
        # exponential delays slow the pipeline down relative to deterministic ones
        deterministic = PerformanceAnalysis(net).throughput("finish_consume").value
        assert result.throughput["finish_consume"] < float(deterministic)

    def test_protocol_gspn_is_pessimistic(self):
        value = gspn_throughput(simple_protocol_net(), "t7", place_capacity=2)
        assert 0 < value < float(PAPER_THROUGHPUT)

    def test_symbolic_net_rejected(self):
        from repro.exceptions import PerformanceError

        net, _constraints, _symbols = simple_protocol_symbolic()
        with pytest.raises(PerformanceError):
            GSPNAnalysis(net)

    def test_probability_of_predicate(self):
        net = producer_consumer_net(production_time=2, transfer_time=1, consumption_time=6)
        result = GSPNAnalysis(net).solve()
        busy = result.probability_of(lambda marking: marking["consuming"] > 0)
        assert 0.5 < busy <= 1.0


class TestTimePetriNets:
    def test_translation_structure(self, paper_net):
        translated = timed_to_time_petri_net(paper_net)
        assert len(translated.transition_order) == 2 * len(paper_net.transition_order)
        assert len(translated.place_order) == len(paper_net.place_order) + len(paper_net.transition_order)
        # the timeout start transition carries the enabling time as a point interval
        start = translated.transitions["t3"]
        assert start.min_time == start.max_time == 1000
        end = translated.transitions["t3__end"]
        assert end.min_time == end.max_time == 1

    def test_translation_preserves_reachable_markings(self):
        """Figure-2 equivalence: projecting the Time Petri Net state classes
        onto the original places yields exactly the markings of the timed
        reachability graph."""
        net = simple_protocol_net()
        original = timed_reachability_graph(net)
        original_markings = {node.state.marking.to_vector() for node in original.nodes}
        translated = timed_to_time_petri_net(net)
        classes = state_class_graph(translated)
        projected = set()
        for vector in classes.markings_projected(net.place_order):
            projected.add(vector)
        # every original marking appears in the projection and vice versa,
        # once the in-progress firings (busy places) are accounted for: a
        # marking of the timed graph corresponds to tokens being either on the
        # original places or absorbed into a busy place.
        original_support = {
            tuple(min(v, 1) for v in vector) for vector in original_markings
        }
        projected_support = {tuple(min(v, 1) for v in vector) for vector in projected}
        assert projected_support == original_support

    def test_state_class_graph_of_cycle(self):
        builder = NetBuilder("cycle")
        builder.transition("go", inputs=["p"], outputs=["q"], firing_time=2)
        builder.transition("back", inputs=["q"], outputs=["p"], firing_time=3)
        builder.mark("p")
        translated = timed_to_time_petri_net(builder.build())
        graph = state_class_graph(translated)
        assert graph.class_count == 4  # p, busy_go, q, busy_back
        assert len(graph.edges) == 4

    def test_interval_transition_validation(self):
        from repro.exceptions import NetDefinitionError
        from repro.timenet import IntervalTransition

        with pytest.raises(NetDefinitionError):
            IntervalTransition("bad", {"p": 1}, {}, min_time=3, max_time=2)

    def test_symbolic_net_cannot_be_translated(self):
        from repro.exceptions import NetDefinitionError

        net, _constraints, _symbols = simple_protocol_symbolic()
        with pytest.raises(NetDefinitionError):
            timed_to_time_petri_net(net)
