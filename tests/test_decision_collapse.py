"""Tests for the decision-graph collapse rejection path.

The collapse cannot terminate on models with a decision-free cycle off the
anchor path — the lossless sliding-window net the ROADMAP flags is the
canonical case: the sender makes choices while filling the window, but once
every frame is in flight the slots cycle deterministically forever.  The
:func:`supports_decision_collapse` predicate diagnoses this up front, and
:func:`decision_graph` raises the same diagnosis instead of failing
mid-collapse.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import PerformanceError
from repro.petri.builder import NetBuilder
from repro.protocols import (
    go_back_n_net,
    simple_protocol_net,
    sliding_window_net,
    token_ring_net,
)
from repro.reachability import (
    CollapseSupport,
    decision_graph,
    supports_decision_collapse,
    timed_reachability_graph,
)


class TestSupportsDecisionCollapse:
    def test_lossless_sliding_window_rejected(self):
        support = supports_decision_collapse(sliding_window_net(2))
        assert isinstance(support, CollapseSupport)
        assert not support
        assert not support.supported
        assert support.cycle, "the offending cycle must be named"
        assert "decision-free cycle" in support.reason
        # The model *does* have decision nodes — the cycle is off their path.
        assert support.anchors

    def test_accepts_prebuilt_graph(self):
        trg = timed_reachability_graph(sliding_window_net(2))
        support = supports_decision_collapse(trg)
        assert not support
        # The named cycle really is decision-free: one successor per node.
        for index in support.cycle:
            assert len(trg.successors(index)) == 1
        # ... and closes on itself.
        last_edge = trg.successors(support.cycle[-1])[0]
        assert last_edge.target == support.cycle[0]

    def test_graph_kwargs_forwarded(self):
        support = supports_decision_collapse(sliding_window_net(2), engine="reference")
        assert not support and support.cycle

    @pytest.mark.parametrize(
        "constructor",
        [
            simple_protocol_net,
            lambda: token_ring_net(3),
            lambda: sliding_window_net(1),
            lambda: go_back_n_net(2),
            lambda: sliding_window_net(2, loss_probability=Fraction(1, 10)),
            lambda: go_back_n_net(2, loss_probability=Fraction(1, 10)),
        ],
        ids=[
            "paper-protocol",
            "token-ring",
            "sliding-window-1",
            "go-back-n-lossless",
            "sliding-window-lossy",
            "go-back-n-lossy",
        ],
    )
    def test_supported_models(self, constructor):
        support = supports_decision_collapse(constructor())
        assert support
        assert support.reason is None
        assert support.cycle == ()

    def test_supported_model_still_collapses(self):
        trg = timed_reachability_graph(simple_protocol_net())
        assert supports_decision_collapse(trg)
        assert decision_graph(trg).edge_count > 0

    def test_absorbing_path_is_supported(self):
        # A deterministic net that dead-ends: the fallback anchor exposes the
        # absorbing path, no cycle is involved, so the collapse is supported.
        builder = NetBuilder("absorbing")
        builder.place("a", tokens=1)
        builder.transition("t1", inputs=["a"], outputs=["b"], firing_time=1)
        builder.transition("t2", inputs=["b"], outputs=[], firing_time=1)
        net = builder.build()
        support = supports_decision_collapse(net)
        assert support
        graph = decision_graph(timed_reachability_graph(net))
        assert graph.has_absorbing_edge()


class TestDecisionGraphRejection:
    def test_raises_diagnostic_before_collapsing(self):
        trg = timed_reachability_graph(sliding_window_net(2))
        with pytest.raises(PerformanceError, match="decision-free cycle") as error:
            decision_graph(trg)
        message = str(error.value)
        assert "supports_decision_collapse" in message
        # The diagnosis names concrete 1-based state numbers.
        support = supports_decision_collapse(trg)
        assert str(support.cycle[0] + 1) in message

    def test_window_three_also_diagnosed(self):
        with pytest.raises(PerformanceError, match="decision-free cycle"):
            decision_graph(timed_reachability_graph(sliding_window_net(3)))
