"""Tests for the generalized decision-graph collapse.

Committed cycles — decision-free cycles off the anchor path, the shape the
strict paper collapse cannot terminate on — are resolved by *cycle-time
analysis*: one node per cycle becomes a synthetic anchor and the cycle folds
onto a probability-one self-loop edge carrying the per-traversal time.  The
lossless sliding-window net is the canonical case: the sender makes choices
while filling the window, but once every frame is in flight the slots cycle
deterministically forever.

The strict paper-shaped predicate remains available as ``fold_cycles=False``
and must keep diagnosing *every* offending cycle by name.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import NotErgodicError, PerformanceError
from repro.performance import (
    PerformanceAnalysis,
    PerformanceMetrics,
    absorption_probabilities,
    embedded_chain_analysis,
    entry_anchor,
    ergodic_decomposition,
    terminal_classes,
    traversal_rates,
)
from repro.petri.builder import NetBuilder
from repro.protocols import (
    go_back_n_net,
    selective_repeat_net,
    simple_protocol_net,
    sliding_window_net,
    token_ring_net,
)
from repro.reachability import (
    CollapseSupport,
    FoldedCycle,
    decision_graph,
    supports_decision_collapse,
    timed_reachability_graph,
)


class TestCycleFolding:
    def test_lossless_sliding_window_now_supported(self):
        support = supports_decision_collapse(sliding_window_net(2))
        assert isinstance(support, CollapseSupport)
        assert support
        assert support.reason is None
        # Two slot-phase orderings -> two committed cycles, both folded.
        assert len(support.cycles) == 2
        assert len(support.folded) == 2
        assert len(support.synthetic_anchors) == 2
        for folded in support.folded:
            assert isinstance(folded, FoldedCycle)
            assert folded.anchor == folded.nodes[0]
            assert folded.cycle_time == Fraction(10)
            # Every slot's four stages fire exactly once per traversal.
            assert sorted(folded.fired) == sorted(
                ["w0_send", "w0_deliver", "w0_ack", "w0_ack_return",
                 "w1_send", "w1_deliver", "w1_ack", "w1_ack_return"]
            )
        # Synthetic anchors join the genuine decision nodes.
        assert set(support.synthetic_anchors) <= set(support.anchors)
        assert "folded onto a self-loop" in support.resolution_report()

    def test_folded_cycles_are_canonical_and_decision_free(self):
        trg = timed_reachability_graph(sliding_window_net(2))
        support = supports_decision_collapse(trg)
        for cycle in support.cycles:
            # Canonical rotation: starts at the smallest node index.
            assert cycle[0] == min(cycle)
            # Decision-free: one successor per node, closing on itself.
            for index in cycle:
                assert len(trg.successors(index)) == 1
            last_edge = trg.successors(cycle[-1])[0]
            assert last_edge.target == cycle[0]

    def test_decision_graph_emits_cycle_edges(self):
        trg = timed_reachability_graph(sliding_window_net(2))
        graph = decision_graph(trg)
        assert graph.has_folded_cycles
        assert len(graph.folded_cycles) == 2
        cycle_edges = graph.folded_cycle_edges()
        assert len(cycle_edges) == 2
        for edge in cycle_edges:
            assert edge.is_folded_cycle
            assert edge.source == edge.target
            assert edge.source in graph.synthetic_anchors
            assert edge.probability == 1
            assert edge.delay == Fraction(10)
            folded = graph.folded_cycle_of_edge(edge)
            assert folded is not None and folded.anchor == edge.source
        # Folded-cycle rows render alongside the Figure-5 style edge table.
        assert len(graph.folded_cycle_table()) == 2
        assert any("(cycle)" in row[2] for row in graph.edge_table())

    @pytest.mark.parametrize(
        "window,expected_cycles",
        [(2, 2), (3, 6), (4, 24)],
        ids=["window-2", "window-3", "window-4"],
    )
    def test_cycle_count_is_slot_phase_factorial(self, window, expected_cycles):
        support = supports_decision_collapse(sliding_window_net(window))
        assert support
        assert len(support.cycles) == expected_cycles
        assert len(support.folded) == expected_cycles

    def test_path_edge_into_cycle_ends_at_synthetic_anchor(self):
        trg = timed_reachability_graph(sliding_window_net(2))
        graph = decision_graph(trg)
        entry_edges = [
            edge for edge in graph.edges
            if not edge.is_folded_cycle and edge.target in graph.synthetic_anchors
        ]
        assert entry_edges, "the transient must enter the folded cycles"
        for edge in entry_edges:
            assert edge.kind == "path"


class TestStrictMode:
    def test_fold_cycles_false_recovers_rejection(self):
        support = supports_decision_collapse(sliding_window_net(2), fold_cycles=False)
        assert not support
        assert support.cycle, "the first offending cycle must be named"
        assert "decision-free" in support.reason
        # The model *does* have decision nodes — the cycles are off their path.
        assert support.anchors
        assert not support.folded

    def test_strict_mode_reports_all_cycles(self):
        support = supports_decision_collapse(sliding_window_net(3), fold_cycles=False)
        assert len(support.cycles) == 6
        assert support.cycle == support.cycles[0]
        # The diagnosis counts and names every committed cycle.
        assert "6 decision-free cycle(s)" in support.reason
        for cycle in support.cycles:
            assert str(cycle[0] + 1) in support.reason

    def test_strict_decision_graph_raises_diagnostic(self):
        trg = timed_reachability_graph(sliding_window_net(2))
        with pytest.raises(PerformanceError, match="decision-free") as error:
            decision_graph(trg, fold_cycles=False)
        message = str(error.value)
        assert "supports_decision_collapse" in message
        support = supports_decision_collapse(trg, fold_cycles=False)
        assert str(support.cycle[0] + 1) in message

    def test_graph_kwargs_forwarded(self):
        support = supports_decision_collapse(
            sliding_window_net(2), fold_cycles=False, engine="reference"
        )
        assert not support and support.cycle


class TestSupportedModelsUnchanged:
    @pytest.mark.parametrize(
        "constructor",
        [
            simple_protocol_net,
            lambda: token_ring_net(3),
            lambda: sliding_window_net(1),
            lambda: go_back_n_net(2),
            lambda: selective_repeat_net(2),
            lambda: sliding_window_net(2, loss_probability=Fraction(1, 10)),
            lambda: go_back_n_net(2, loss_probability=Fraction(1, 10)),
        ],
        ids=[
            "paper-protocol",
            "token-ring",
            "sliding-window-1",
            "go-back-n-lossless",
            "selective-repeat-lossless",
            "sliding-window-lossy",
            "go-back-n-lossy",
        ],
    )
    def test_models_without_committed_cycles(self, constructor):
        support = supports_decision_collapse(constructor())
        assert support
        assert support.reason is None
        assert support.cycle == ()
        assert support.cycles == ()
        assert support.folded == ()
        assert "strict decision-node collapse applies" in support.resolution_report()

    def test_supported_model_still_collapses(self):
        trg = timed_reachability_graph(simple_protocol_net())
        assert supports_decision_collapse(trg)
        graph = decision_graph(trg)
        assert graph.edge_count > 0
        assert not graph.has_folded_cycles

    def test_absorbing_path_is_supported(self):
        # A deterministic net that dead-ends: the fallback anchor exposes the
        # absorbing path, no cycle is involved, so the collapse is supported.
        builder = NetBuilder("absorbing")
        builder.place("a", tokens=1)
        builder.transition("t1", inputs=["a"], outputs=["b"], firing_time=1)
        builder.transition("t2", inputs=["b"], outputs=[], firing_time=1)
        net = builder.build()
        support = supports_decision_collapse(net)
        assert support
        graph = decision_graph(timed_reachability_graph(net))
        assert graph.has_absorbing_edge()


def zero_time_cycle_net():
    """A decision leading (on one branch) into a zero-per-traversal-time loop.

    ``spin`` recycles its token with zero enabling and firing time, so once
    the model commits to that branch it loops infinitely fast — the one
    committed-cycle shape cycle-time analysis cannot resolve.
    """
    builder = NetBuilder("zero-time-cycle")
    builder.place("choice", tokens=1)
    builder.place("spin_loop")
    builder.place("work_loop")
    builder.transition(
        "go_spin", inputs=["choice"], outputs=["spin_loop"], firing_time=1, frequency=1
    )
    builder.transition(
        "go_work", inputs=["choice"], outputs=["work_loop"], firing_time=1, frequency=1
    )
    builder.transition("spin", inputs=["spin_loop"], outputs=["spin_loop"], firing_time=0)
    builder.transition("work", inputs=["work_loop"], outputs=["work_loop"], firing_time=3)
    return builder.build()


class TestZeroTimeCycleRejection:
    def test_zero_time_committed_cycle_is_rejected(self):
        net = zero_time_cycle_net()
        support = supports_decision_collapse(net)
        assert not support
        assert "zero per-traversal time" in support.reason
        assert support.cycle, "the zero-time cycle must be named"
        # All committed cycles are still enumerated (the 3 ms loop folds fine,
        # the zero-time one is the deal-breaker).
        assert len(support.cycles) == 2

    def test_decision_graph_raises_before_collapsing(self):
        trg = timed_reachability_graph(zero_time_cycle_net())
        with pytest.raises(PerformanceError, match="zero per-traversal time"):
            decision_graph(trg)


class TestFoldedPerformance:
    def test_ergodic_decomposition_of_lossless_window(self):
        graph = decision_graph(timed_reachability_graph(sliding_window_net(2)))
        classes = terminal_classes(graph)
        assert len(classes) == 2
        # Each terminal class is one folded cycle's synthetic anchor.
        assert {anchors[0] for anchors in classes} == set(graph.synthetic_anchors)
        probabilities = absorption_probabilities(graph, classes)
        assert sum(probabilities) == 1
        assert all(probability == Fraction(1, 2) for probability in probabilities)
        decomposition = ergodic_decomposition(graph)
        assert not decomposition.is_ergodic
        assert decomposition.class_count == 2
        assert decomposition.entry == entry_anchor(graph)

    def test_class_restricted_traversal_rates(self):
        graph = decision_graph(timed_reachability_graph(sliding_window_net(2)))
        # The default solve refuses: several terminal classes.
        with pytest.raises(NotErgodicError):
            traversal_rates(graph)
        rates = traversal_rates(graph, terminal_class=0)
        cycle_edge = graph.folded_cycle_edges()[0]
        assert rates.rate_of_edge(cycle_edge) == 1
        with pytest.raises(PerformanceError):
            traversal_rates(graph, terminal_class=99)

    def test_embedded_chain_cross_checks_each_class(self):
        graph = decision_graph(timed_reachability_graph(sliding_window_net(2)))
        with pytest.raises(NotErgodicError):
            embedded_chain_analysis(graph)
        for index in range(2):
            chain = embedded_chain_analysis(graph, terminal_class=index)
            assert chain.mean_cycle_time == Fraction(10)
            assert chain.throughput(graph, "w0_send") == Fraction(1, 10)

    @pytest.mark.parametrize("window", [2, 3, 4])
    def test_window_throughput_closed_form(self, window):
        analysis = PerformanceAnalysis(sliding_window_net(window))
        # Send+deliver+ack+ack_return = 1+4+1+4 = 10 ms per slot per round.
        assert analysis.cycle_time().value == Fraction(10)
        for slot in range(window):
            assert analysis.throughput(f"w{slot}_ack_return").value == Fraction(1, 10)
        assert analysis.utilization("w0_deliver").value == Fraction(2, 5)
        assert analysis.terminal_class_count == len(analysis.folded_cycles)

    def test_metrics_with_explicit_rates_stay_single_class(self):
        graph = decision_graph(timed_reachability_graph(sliding_window_net(2)))
        rates = traversal_rates(graph, terminal_class=1)
        metrics = PerformanceMetrics(graph, rates)
        assert metrics.decomposition is None
        assert metrics.throughput("w0_send") == Fraction(1, 10)

    def test_paper_protocol_decomposition_is_degenerate(self):
        analysis = PerformanceAnalysis(simple_protocol_net())
        assert analysis.terminal_class_count == 1
        assert analysis.decomposition.is_ergodic
        assert analysis.decomposition.classes[0].probability == 1
        assert analysis.folded_cycles == ()


class TestTraversalEdgeCases:
    @pytest.fixture(scope="class")
    def folded_graph(self):
        return decision_graph(timed_reachability_graph(sliding_window_net(2)))

    def test_absorption_from_a_recurrent_anchor_is_one_hot(self, folded_graph):
        classes = terminal_classes(folded_graph)
        anchor = classes[1][0]
        probabilities = absorption_probabilities(
            folded_graph, classes, from_anchor=anchor
        )
        assert probabilities == (Fraction(0), Fraction(1))

    def test_normalized_rates_and_equations_text(self, folded_graph):
        rates = traversal_rates(folded_graph, terminal_class=0)
        cycle_edge = folded_graph.folded_cycle_edges()[0]
        normalized = rates.normalized_to_edge(cycle_edge)
        assert normalized.rate_of_edge(cycle_edge) == 1
        assert "r1 =" in rates.equations_text()
        # Transient edges carry rate zero; normalizing to one is refused.
        other_cycle_edge = folded_graph.folded_cycle_edges()[1]
        assert rates.rate_of_edge(other_cycle_edge) == 0
        with pytest.raises(PerformanceError, match="rate zero"):
            rates.normalized_to_edge(other_cycle_edge)

    def test_bad_reference_anchor_is_refused(self, folded_graph):
        with pytest.raises(PerformanceError, match="not a recurrent"):
            traversal_rates(
                folded_graph,
                terminal_class=0,
                reference_anchor=folded_graph.synthetic_anchors.__iter__().__next__() + 999,
            )

    def test_embedded_chain_class_index_out_of_range(self, folded_graph):
        with pytest.raises(NotErgodicError, match="out of range"):
            embedded_chain_analysis(folded_graph, terminal_class=7)

    def test_metrics_count_validation_and_completed_counts(self, folded_graph):
        metrics = PerformanceMetrics(folded_graph)
        with pytest.raises(ValueError):
            metrics.firings_per_cycle("w0_send", count="bogus")
        # In steady state starts and completions coincide on the cycle.
        assert metrics.throughput("w0_send", count="completed") == metrics.throughput("w0_send")
        assert metrics.edge_time_share(0) == metrics.edge_time_share(folded_graph.edges[0])
        entry = entry_anchor(folded_graph)
        assert metrics.anchor_visit_frequency(entry) == 0  # transient anchor

    def test_absorbing_graph_refused_by_all_solvers(self):
        builder = NetBuilder("absorbing-choice")
        builder.place("a", tokens=1)
        builder.transition("t1", inputs=["a"], outputs=["b"], firing_time=1, frequency=1)
        builder.transition("t2", inputs=["a"], outputs=[], firing_time=2, frequency=1)
        builder.transition("t3", inputs=["b"], outputs=["a"], firing_time=1)
        graph = decision_graph(timed_reachability_graph(builder.build()))
        assert graph.has_absorbing_edge()
        with pytest.raises(NotErgodicError):
            traversal_rates(graph)
        with pytest.raises(NotErgodicError):
            ergodic_decomposition(graph)
        with pytest.raises(NotErgodicError):
            embedded_chain_analysis(graph)
