"""Tests for the protocol/workload model zoo."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.performance import PerformanceAnalysis
from repro.protocols import (
    PAPER_DECISION_DELAYS,
    PAPER_STATE_COUNT,
    PAPER_THROUGHPUT,
    SimpleProtocolParameters,
    alternating_bit_net,
    go_back_n_net,
    model_catalog,
    paper_bindings,
    paper_throughput_expression_value,
    pipelined_stop_and_wait_net,
    producer_consumer_net,
    protocol_symbols,
    sliding_window_net,
    section4_constraints,
    simple_protocol_net,
    simple_protocol_symbolic,
    token_ring_net,
)
from repro.protocols.alternating_bit import message_accept_transitions
from repro.reachability import timed_reachability_graph


class TestSimpleProtocolModel:
    def test_structure(self, paper_net):
        assert len(paper_net.places) == 8
        assert len(paper_net.transitions) == 9
        assert paper_net.initial_marking.to_dict() == {"p1": 1, "p8": 1}

    def test_defaults_match_figure_1b(self, paper_net):
        assert paper_net.transition("t3").enabling_time == 1000
        assert paper_net.transition("t4").firing_time == Fraction("106.7")
        assert paper_net.transition("t6").firing_time == Fraction("13.5")
        assert paper_net.transition("t4").firing_frequency == Fraction(19, 20)
        assert paper_net.transition("t5").firing_frequency == Fraction(1, 20)

    def test_parameter_overrides(self):
        net = simple_protocol_net(packet_loss_probability=0.2, timeout=500)
        assert net.transition("t5").firing_frequency == Fraction(1, 5)
        assert net.transition("t3").enabling_time == 500

    def test_parameters_object(self):
        parameters = SimpleProtocolParameters(packet_loss_probability=Fraction(1, 10))
        net = simple_protocol_net(parameters)
        assert net.transition("t5").firing_frequency == Fraction(1, 10)
        with pytest.raises(TypeError):
            simple_protocol_net(parameters, timeout=10)

    def test_invalid_loss_probability(self):
        with pytest.raises(ValueError):
            simple_protocol_net(packet_loss_probability=1.5)

    def test_loss_delay_defaults_to_delivery_delay(self):
        parameters = SimpleProtocolParameters(packet_delay=50).resolved()
        assert parameters.packet_loss_delay == 50
        assert parameters.ack_loss_delay == parameters.ack_delay

    def test_paper_constants_are_consistent(self):
        assert float(PAPER_THROUGHPUT) == pytest.approx(0.0028518522, rel=1e-6)
        assert PAPER_THROUGHPUT == paper_throughput_expression_value()
        assert set(PAPER_DECISION_DELAYS) == {"packet_lost", "packet_delivered", "ack_delivered", "ack_lost"}

    def test_zero_loss_protocol(self):
        net = simple_protocol_net(packet_loss_probability=0, ack_loss_probability=0)
        analysis = PerformanceAnalysis(net)
        # without losses the cycle is exactly the round trip: 1+106.7+13.5+106.7+1+13.5
        assert analysis.cycle_time().value == Fraction("242.4")
        assert analysis.throughput("t2").value == 1 / Fraction("242.4")
        # and the timeout never fires
        assert analysis.throughput("t3").value == 0


class TestSimpleProtocolSymbolic:
    def test_symbols_and_constraints(self):
        symbols = protocol_symbols()
        assert symbols["E3"].name == "E_t3"
        constraints = section4_constraints(symbols)
        assert constraints.labels() == ("1", "2", "3", "4")
        assert constraints.is_consistent()

    def test_symbolic_net_is_symbolic(self, symbolic_protocol):
        net, _constraints, _symbols = symbolic_protocol
        assert net.is_symbolic
        assert net.frequency_symbols()
        assert net.time_symbols()

    def test_bindings_specialize_to_paper_net(self, symbolic_protocol, paper_net):
        net, _constraints, _symbols = symbolic_protocol
        bound = net.bind(paper_bindings())
        graph = timed_reachability_graph(bound)
        assert graph.state_count == PAPER_STATE_COUNT

    def test_separate_loss_symbol_variant(self):
        net, constraints, symbols = simple_protocol_symbolic(apply_equal_loss_delays=False)
        assert net.transition("t5").firing_time == symbols["F5"]
        assert constraints.is_consistent()


class TestAlternatingBit:
    def test_structure(self):
        net = alternating_bit_net()
        assert len(net.places) == 14
        assert len(net.transitions) == 20
        assert set(message_accept_transitions()) == {"accept0", "accept1"}

    def test_reachability_is_roughly_double_the_simple_protocol(self):
        graph = timed_reachability_graph(alternating_bit_net())
        assert graph.state_count == 52
        assert not graph.dead_nodes()

    def test_throughput_matches_equivalent_simple_protocol(self):
        """The alternating bit adds robustness, not speed.

        The AB sender accepts an acknowledgement and immediately sends the
        next message (it has no separate 13.5 ms "prepare next message"
        stage), so its message throughput equals the simple protocol's with
        ``next_message_time = 0`` — an exact cross-model consistency check.
        """
        analysis = PerformanceAnalysis(alternating_bit_net())
        total = analysis.throughput("accept0").value + analysis.throughput("accept1").value
        equivalent = PerformanceAnalysis(simple_protocol_net(next_message_time=0))
        assert total == equivalent.throughput("t2").value
        # and it is within ~5 % of the paper's protocol (which has the extra stage)
        assert float(total) == pytest.approx(float(PAPER_THROUGHPUT), rel=0.05)

    def test_bit_symmetry(self):
        analysis = PerformanceAnalysis(alternating_bit_net())
        assert analysis.throughput("accept0").value == analysis.throughput("accept1").value
        assert analysis.throughput("send0").value == analysis.throughput("send1").value

    def test_duplicates_track_lost_acknowledgements(self):
        """Every lost acknowledgement causes exactly one duplicate
        retransmission that the receiver re-acknowledges; stale
        acknowledgements never occur when the timeout exceeds the round trip."""
        analysis = PerformanceAnalysis(alternating_bit_net())
        assert analysis.throughput("duplicate0").value == analysis.throughput("lose_ack0").value
        assert analysis.throughput("duplicate1").value == analysis.throughput("lose_ack1").value
        assert analysis.throughput("duplicate0").value > 0
        for name in ("stale_ack0", "stale_ack1"):
            assert analysis.throughput(name).value == 0

    def test_loss_probability_override(self):
        analysis = PerformanceAnalysis(alternating_bit_net(loss_probability=0))
        assert analysis.throughput("timeout0").value == 0

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            alternating_bit_net(loss_probability=2)


class TestWorkloads:
    def test_producer_consumer_parameters(self):
        net = producer_consumer_net(buffer_size=2, loss_probability=Fraction(1, 4))
        assert net.initial_marking["buffer_slots"] == 2
        assert "drop" in net.transitions
        with pytest.raises(ValueError):
            producer_consumer_net(buffer_size=0)

    def test_producer_consumer_lossless_has_no_drop_transition(self):
        assert "drop" not in producer_consumer_net().transitions

    def test_producer_consumer_with_loss_throughput(self):
        # With 50% drop probability and a fast consumer, the delivered rate is
        # half the producer's effective rate.
        analysis = PerformanceAnalysis(
            producer_consumer_net(
                production_time=5, transfer_time=1, consumption_time=1, loss_probability=Fraction(1, 2)
            )
        )
        produced = analysis.throughput("produce").value
        consumed = analysis.throughput("finish_consume").value
        assert consumed == produced / 2

    def test_token_ring_scaling(self):
        sizes = {}
        for stations in (2, 3, 4):
            graph = timed_reachability_graph(token_ring_net(stations))
            sizes[stations] = graph.state_count
        assert sizes[2] < sizes[3] < sizes[4]
        assert sizes[4] == 16  # 4 stations * (transmit + pass) * 2 phases

    def test_token_ring_requires_two_stations(self):
        with pytest.raises(ValueError):
            token_ring_net(1)

    def test_pipelined_single_channel(self):
        analysis = PerformanceAnalysis(pipelined_stop_and_wait_net(1))
        assert analysis.throughput("c0_got_ack").value > 0

    def test_pipelined_two_channels_share_the_receiver(self):
        analysis = PerformanceAnalysis(pipelined_stop_and_wait_net(2), max_states=5000)
        assert analysis.throughput("c0_got_ack").value == analysis.throughput("c1_got_ack").value

    def test_pipelined_requires_a_channel(self):
        with pytest.raises(ValueError):
            pipelined_stop_and_wait_net(0)

    def test_sliding_window_lossless_structure(self):
        net = sliding_window_net(2)
        assert "w0_send" in net.transitions and "w1_send" in net.transitions
        assert "w0_lose" not in net.transitions
        # All sends share the sender and therefore form one conflict set.
        assert net.conflict_set_of("w0_send") == net.conflict_set_of("w1_send")

    def test_sliding_window_lossy_adds_timeout_path(self):
        net = sliding_window_net(2, loss_probability=Fraction(1, 10))
        assert "w0_lose" in net.transitions and "w0_resend" in net.transitions
        graph = timed_reachability_graph(net)
        assert graph.decision_nodes()
        assert not graph.dead_nodes()

    def test_go_back_n_throughput(self):
        analysis = PerformanceAnalysis(go_back_n_net(2))
        # All slots cycle at the same rate — the pipeline is in-order.
        assert analysis.throughput("g0_ack_return").value > 0
        assert (
            analysis.throughput("g0_ack_return").value
            == analysis.throughput("g1_ack_return").value
        )

    def test_go_back_n_receiver_is_in_order(self):
        net = go_back_n_net(3)
        # The accept transitions chain the expect token through the slots.
        accept = net.transition("g1_accept")
        assert "g1_expect" in accept.inputs
        assert "g2_expect" in accept.outputs

    def test_catalog_constructs_every_model(self):
        for name, constructor in model_catalog().items():
            net = constructor()
            assert net.transition_order, name
