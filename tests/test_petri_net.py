"""Unit tests for the Timed Petri Net model classes, builder, conflicts and validation."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import ConflictSetError, NetDefinitionError
from repro.petri import (
    Multiset,
    NetBuilder,
    Place,
    TimedPetriNet,
    Transition,
    assert_valid,
    classify,
    partition_into_conflict_sets,
    validate_net,
    validate_user_partition,
)
from repro.symbolic import LinExpr, time_symbol


def two_transition_net():
    builder = NetBuilder("tiny")
    builder.transition("a", inputs=["p"], outputs=["q"], firing_time=2)
    builder.transition("b", inputs=["q"], outputs=["p"], firing_time=3)
    builder.mark("p")
    return builder.build()


class TestPlaceTransition:
    def test_place_requires_name(self):
        with pytest.raises(NetDefinitionError):
            Place("")

    def test_place_capacity_must_be_positive(self):
        with pytest.raises(NetDefinitionError):
            Place("p", capacity=0)

    def test_transition_times_are_exact(self):
        transition = Transition("t", Multiset({"p": 1}), Multiset(), firing_time=106.7)
        assert transition.firing_time == Fraction("106.7")

    def test_negative_firing_time_rejected(self):
        with pytest.raises(NetDefinitionError):
            Transition("t", Multiset(), Multiset(), firing_time=-1)

    def test_negative_frequency_rejected(self):
        with pytest.raises(NetDefinitionError):
            Transition("t", Multiset(), Multiset(), firing_frequency=-0.5)

    def test_has_enabling_delay(self):
        timed = Transition("t", Multiset({"p": 1}), Multiset(), enabling_time=5)
        assert timed.has_enabling_delay
        assert not Transition("u", Multiset({"p": 1}), Multiset()).has_enabling_delay

    def test_is_immediate(self):
        assert Transition("t", Multiset({"p": 1}), Multiset()).is_immediate
        assert not Transition("u", Multiset({"p": 1}), Multiset(), firing_time=1).is_immediate

    def test_symbolic_detection(self):
        symbol = time_symbol("F_x")
        transition = Transition("t", Multiset({"p": 1}), Multiset(), firing_time=LinExpr.from_symbol(symbol))
        assert transition.is_symbolic


class TestNetConstruction:
    def test_duplicate_place_rejected(self):
        with pytest.raises(NetDefinitionError):
            TimedPetriNet("n", ["p", "p"], [], {})

    def test_duplicate_transition_rejected(self):
        t = Transition("t", Multiset({"p": 1}), Multiset())
        with pytest.raises(NetDefinitionError):
            TimedPetriNet("n", ["p"], [t, t], {})

    def test_arc_to_unknown_place_rejected(self):
        t = Transition("t", Multiset({"zzz": 1}), Multiset())
        with pytest.raises(NetDefinitionError):
            TimedPetriNet("n", ["p"], [t], {})

    def test_name_clash_between_place_and_transition(self):
        t = Transition("p", Multiset(), Multiset({"p": 1}))
        with pytest.raises(NetDefinitionError):
            TimedPetriNet("n", ["p"], [t], {})

    def test_all_zero_frequencies_in_choice_rejected(self):
        a = Transition("a", Multiset({"p": 1}), Multiset(), firing_frequency=0)
        b = Transition("b", Multiset({"p": 1}), Multiset(), firing_frequency=0)
        with pytest.raises(NetDefinitionError):
            TimedPetriNet("n", ["p"], [a, b], {"p": 1})
        # but allowed when the check is disabled explicitly
        TimedPetriNet("n", ["p"], [a, b], {"p": 1}, conflict_frequencies_required=False)

    def test_structural_queries(self, paper_net):
        assert paper_net.postset_of_place("p4") == ("t4", "t5")
        assert paper_net.preset_of_place("p1") == ("t3", "t7")
        assert paper_net.is_sink_transition("t5")
        assert not paper_net.is_source_transition("t1")

    def test_enabled_transitions_in_initial_marking(self, paper_net):
        assert paper_net.enabled_transitions(paper_net.initial_marking) == ("t1",)

    def test_fire_untimed_moves_tokens(self):
        net = two_transition_net()
        after = net.fire_untimed(net.initial_marking, "a")
        assert after.to_dict() == {"q": 1}

    def test_fire_untimed_requires_enabling(self):
        net = two_transition_net()
        with pytest.raises(NetDefinitionError):
            net.fire_untimed(net.initial_marking, "b")

    def test_timing_table_matches_declarations(self, paper_net):
        table = dict((row[0], (row[1], row[2])) for row in paper_net.timing_table())
        assert table["t3"] == (Fraction(1000), Fraction(1))
        assert table["t4"] == (Fraction(0), Fraction("106.7"))

    def test_summary_mentions_conflict_sets(self, paper_net):
        assert "conflict sets" in paper_net.summary()

    def test_contains(self, paper_net):
        assert "p1" in paper_net
        assert "t1" in paper_net
        assert "zzz" not in paper_net


class TestNetRewriting:
    def test_with_transition_times(self, paper_net):
        modified = paper_net.with_transition_times(firing={"t1": 2})
        assert modified.transition("t1").firing_time == Fraction(2)
        assert paper_net.transition("t1").firing_time == Fraction(1)

    def test_with_initial_marking(self, paper_net):
        modified = paper_net.with_initial_marking({"p1": 1, "p8": 1, "p4": 1})
        assert modified.initial_marking["p4"] == 1

    def test_bind_specializes_symbols(self, symbolic_protocol, paper_parameter_bindings, paper_net):
        symbolic_net, _constraints, _symbols = symbolic_protocol
        bound = symbolic_net.bind(paper_parameter_bindings)
        assert not bound.is_symbolic
        for name in paper_net.transition_order:
            assert bound.transition(name).firing_time == paper_net.transition(name).firing_time

    def test_unknown_transition_in_override_rejected(self, paper_net):
        with pytest.raises(NetDefinitionError):
            paper_net.with_transition_times(firing={"zzz": 2})


class TestConflictSets:
    def test_paper_partition(self, paper_net):
        groups = sorted(cs.transition_names for cs in paper_net.conflict_sets)
        assert ("t4", "t5") in groups
        assert ("t8", "t9") in groups
        assert ("t2", "t3") in groups

    def test_conflict_set_of(self, paper_net):
        assert paper_net.conflict_set_of("t4") is paper_net.conflict_set_of("t5")
        assert paper_net.conflict_set_of("t1") is not paper_net.conflict_set_of("t4")

    def test_probabilities_follow_frequencies(self, paper_net):
        conflict_set = paper_net.conflict_set_of("t4")
        probabilities = conflict_set.firing_probabilities(["t4", "t5"])
        assert probabilities["t4"] == Fraction(19, 20)
        assert probabilities["t5"] == Fraction(1, 20)

    def test_single_firable_member_has_probability_one(self, paper_net):
        conflict_set = paper_net.conflict_set_of("t2")
        assert conflict_set.firing_probabilities(["t2"]) == {"t2": Fraction(1)}

    def test_zero_frequency_member_excluded_when_alternative_exists(self, paper_net):
        conflict_set = paper_net.conflict_set_of("t2")
        probabilities = conflict_set.firing_probabilities(["t2", "t3"])
        assert probabilities == {"t3": Fraction(1)}

    def test_unknown_member_rejected(self, paper_net):
        with pytest.raises(ConflictSetError):
            paper_net.conflict_set_of("t4").firing_probabilities(["t1"])

    def test_transitive_closure_merges_chains(self):
        a = Transition("a", Multiset({"p": 1}), Multiset())
        b = Transition("b", Multiset({"p": 1, "q": 1}), Multiset())
        c = Transition("c", Multiset({"q": 1}), Multiset())
        sets = partition_into_conflict_sets([a, b, c])
        assert len(sets) == 1
        assert sets[0].transition_names == ("a", "b", "c")

    def test_validate_user_partition_accepts_match(self, paper_net):
        validate_user_partition(
            [("t4", "t5"), ("t8", "t9"), ("t2", "t3")], paper_net.conflict_sets
        )

    def test_validate_user_partition_rejects_mismatch(self, paper_net):
        with pytest.raises(ConflictSetError):
            validate_user_partition([("t4", "t8")], paper_net.conflict_sets)


class TestBuilder:
    def test_places_created_on_demand(self):
        net = two_transition_net()
        assert set(net.place_order) == {"p", "q"}

    def test_strict_places_requires_declarations(self):
        builder = NetBuilder("strict", strict_places=True)
        with pytest.raises(NetDefinitionError):
            builder.transition("t", inputs=["p"], outputs=[])

    def test_duplicate_transition_rejected(self):
        builder = NetBuilder("dup")
        builder.transition("t", inputs=["p"], outputs=[])
        with pytest.raises(NetDefinitionError):
            builder.transition("t", inputs=["p"], outputs=[])

    def test_mark_accumulates(self):
        builder = NetBuilder("marks")
        builder.transition("t", inputs=["p"], outputs=[])
        builder.mark("p").mark("p", 2)
        assert builder.build(conflict_frequencies_required=False).initial_marking["p"] == 3

    def test_initial_marking_replaces(self):
        builder = NetBuilder("marks")
        builder.transition("t", inputs=["p"], outputs=["q"])
        builder.mark("p", 5)
        builder.initial_marking({"q": 1})
        net = builder.build()
        assert net.initial_marking.to_dict() == {"q": 1}

    def test_empty_builder_rejected(self):
        with pytest.raises(NetDefinitionError):
            NetBuilder("empty").build()

    def test_weighted_arcs_via_mapping(self):
        builder = NetBuilder("weighted")
        builder.transition("t", inputs={"p": 2}, outputs={"q": 3})
        builder.mark("p", 2)
        net = builder.build()
        assert net.transition("t").inputs["p"] == 2
        assert net.transition("t").outputs["q"] == 3


class TestValidation:
    def test_paper_net_is_valid(self, paper_net):
        diagnostics = assert_valid(paper_net)
        codes = {d.code for d in diagnostics}
        assert "sink-transition" in codes  # the loss transitions

    def test_isolated_place_is_flagged(self):
        builder = NetBuilder("iso")
        builder.place("lonely")
        builder.transition("t", inputs=["p"], outputs=["q"], firing_time=1)
        builder.mark("p")
        diagnostics = validate_net(builder.build())
        assert any(d.code == "isolated-place" and d.subject == "lonely" for d in diagnostics)

    def test_empty_initial_marking_is_flagged(self):
        builder = NetBuilder("unmarked")
        builder.transition("t", inputs=["p"], outputs=["q"], firing_time=1)
        diagnostics = validate_net(builder.build())
        assert any(d.code == "empty-initial-marking" for d in diagnostics)

    def test_immediate_cycle_is_flagged(self):
        builder = NetBuilder("spin")
        builder.transition("t1", inputs=["p"], outputs=["q"])
        builder.transition("t2", inputs=["q"], outputs=["p"])
        builder.mark("p")
        diagnostics = validate_net(builder.build())
        assert any(d.code == "immediate-cycle" for d in diagnostics)

    def test_capacity_violation_is_an_error(self):
        builder = NetBuilder("cap")
        builder.place("p", capacity=1, tokens=2)
        builder.transition("t", inputs=["p"], outputs=[])
        with pytest.raises(NetDefinitionError):
            assert_valid(builder.build())

    def test_mixed_enabling_times_warning(self, paper_net):
        diagnostics = validate_net(paper_net)
        assert any(d.code == "mixed-enabling-times" for d in diagnostics)


class TestClassification:
    def test_paper_net_is_asymmetric_choice(self, paper_net):
        result = classify(paper_net)
        assert not result.is_free_choice
        assert not result.is_state_machine
        assert result.is_asymmetric_choice
        assert result.most_specific_class() == "asymmetric choice"

    def test_token_ring_is_marked_graph(self):
        from repro.protocols import token_ring_net

        result = classify(token_ring_net(3))
        assert result.is_marked_graph
        assert result.is_state_machine  # every transition also has one input and one output
