"""Shared fixtures for the test suite.

Expensive artifacts (the paper's symbolic reachability graph, the numeric
performance analysis) are built once per session; everything downstream
treats them as immutable, which they are.
"""

from __future__ import annotations

import pytest

from repro.performance import PerformanceAnalysis
from repro.protocols import (
    paper_bindings,
    simple_protocol_net,
    simple_protocol_symbolic,
)
from repro.reachability import decision_graph, timed_reachability_graph


@pytest.fixture(scope="session")
def paper_net():
    """The numeric Figure-1 net with the paper's parameters."""
    return simple_protocol_net()


@pytest.fixture(scope="session")
def paper_trg(paper_net):
    """The numeric timed reachability graph of the paper's protocol (Figure 4)."""
    return timed_reachability_graph(paper_net)


@pytest.fixture(scope="session")
def paper_decision(paper_trg):
    """The numeric decision graph of the paper's protocol (Figure 5)."""
    return decision_graph(paper_trg)


@pytest.fixture(scope="session")
def paper_analysis(paper_net):
    """End-to-end numeric performance analysis of the paper's protocol."""
    return PerformanceAnalysis(paper_net)


@pytest.fixture(scope="session")
def symbolic_protocol():
    """The symbolic Figure-1 net, its Section-4 constraints and its symbols."""
    return simple_protocol_symbolic()


@pytest.fixture(scope="session")
def symbolic_analysis(symbolic_protocol):
    """End-to-end symbolic performance analysis (Figures 6-8)."""
    net, constraints, _symbols = symbolic_protocol
    return PerformanceAnalysis(net, constraints)


@pytest.fixture(scope="session")
def paper_parameter_bindings():
    """Numeric bindings of the symbolic model matching Figure 1b."""
    return paper_bindings()
