"""Tests for model I/O (JSON, PNML, DOT), visualization helpers and the CLI."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.cli import main
from repro.exceptions import NetDefinitionError
from repro.petri.io import (
    dumps,
    load,
    load_pnml,
    loads,
    net_from_pnml,
    net_to_dot,
    net_to_pnml,
    parse_value,
    save,
    save_pnml,
)
from repro.protocols import simple_protocol_net, simple_protocol_symbolic
from repro.reachability import decision_graph, timed_reachability_graph
from repro.symbolic import LinExpr, time_symbol
from repro.viz import (
    ComparisonRow,
    ExperimentReport,
    decision_to_dot,
    format_kv,
    format_table,
    indent,
    reachability_to_dot,
    save_decision_dot,
    save_reachability_dot,
    write_reports,
)


class TestJsonIo:
    def test_round_trip_preserves_structure_and_timing(self, paper_net):
        restored = loads(dumps(paper_net))
        assert restored.place_order == paper_net.place_order
        assert restored.transition_order == paper_net.transition_order
        assert restored.initial_marking == paper_net.initial_marking
        for name in paper_net.transition_order:
            assert restored.transition(name).firing_time == paper_net.transition(name).firing_time
            assert restored.transition(name).firing_frequency == paper_net.transition(name).firing_frequency

    def test_round_trip_preserves_behaviour(self, paper_net, paper_trg):
        restored = loads(dumps(paper_net))
        assert timed_reachability_graph(restored).state_count == paper_trg.state_count

    def test_symbolic_round_trip(self, symbolic_protocol):
        net, _constraints, symbols = symbolic_protocol
        restored = loads(dumps(net))
        assert restored.is_symbolic
        assert restored.transition("t3").enabling_time == LinExpr.from_symbol(symbols["E3"])

    def test_file_round_trip(self, tmp_path, paper_net):
        path = save(paper_net, tmp_path / "net.json")
        assert load(path).transition_order == paper_net.transition_order

    def test_parse_value_numbers_and_expressions(self):
        assert parse_value("106.7") == Fraction(1067, 10)
        assert parse_value("1067/10") == Fraction(1067, 10)
        assert parse_value(3) == 3
        expression = parse_value("E_t3 - F_t4 - 2*F_t6")
        assert expression.coefficient(time_symbol("F_t6")) == -2

    def test_parse_value_rejects_garbage(self):
        with pytest.raises(NetDefinitionError):
            parse_value("??")
        with pytest.raises(NetDefinitionError):
            parse_value("")

    def test_missing_field_rejected(self):
        with pytest.raises(NetDefinitionError):
            loads('{"name": "x", "places": []}')


class TestPnml:
    def test_round_trip(self, paper_net):
        restored = net_from_pnml(net_to_pnml(paper_net))
        assert set(restored.place_order) == set(paper_net.place_order)
        assert set(restored.transition_order) == set(paper_net.transition_order)
        assert restored.initial_marking == paper_net.initial_marking
        assert restored.transition("t4").firing_time == Fraction("106.7")
        assert restored.transition("t3").enabling_time == 1000
        assert timed_reachability_graph(restored).state_count == 18

    def test_file_round_trip(self, tmp_path, paper_net):
        path = save_pnml(paper_net, tmp_path / "net.pnml")
        assert load_pnml(path).initial_marking == paper_net.initial_marking

    def test_invalid_document_rejected(self):
        with pytest.raises(NetDefinitionError):
            net_from_pnml("<not-pnml/>")
        with pytest.raises(NetDefinitionError):
            net_from_pnml("garbage <<")


class TestDotExports:
    def test_net_dot_contains_every_node(self, paper_net):
        dot = net_to_dot(paper_net, include_descriptions=True)
        for name in list(paper_net.place_order) + list(paper_net.transition_order):
            assert f'"{name}"' in dot
        assert dot.startswith("digraph")

    def test_reachability_dot(self, paper_trg, tmp_path):
        dot = reachability_to_dot(paper_trg)
        assert dot.count("->") == paper_trg.edge_count
        assert "doublecircle" in dot  # decision nodes stand out
        path = save_reachability_dot(paper_trg, tmp_path / "trg.dot")
        assert path.read_text().startswith("digraph")

    def test_decision_dot(self, paper_decision, tmp_path):
        dot = decision_to_dot(paper_decision)
        assert dot.count("->") == paper_decision.edge_count
        path = save_decision_dot(paper_decision, tmp_path / "decision.dot")
        assert "a1" in path.read_text()

    def test_decision_dot_marks_folded_cycles(self):
        from repro.protocols import sliding_window_net

        graph = decision_graph(timed_reachability_graph(sliding_window_net(2)))
        dot = decision_to_dot(graph)
        # Folded cycles: dashed self-loops, synthetic anchors as plain circles.
        assert dot.count("style=dashed") == 2
        assert "cycle, d=10" in dot
        assert "shape=circle" in dot


class TestFoldedCycleTables:
    def test_format_folded_cycles_empty_for_classical_graphs(self, paper_decision):
        from repro.viz import format_decision_edges, format_folded_cycles

        assert format_folded_cycles(paper_decision) == ""
        # Without folded cycles the edge table keeps its classical five columns.
        assert "kind" not in format_decision_edges(paper_decision)

    def test_format_folded_cycles_rows(self):
        from repro.protocols import sliding_window_net
        from repro.viz import format_decision_edges, format_folded_cycles

        graph = decision_graph(timed_reachability_graph(sliding_window_net(2)))
        text = format_folded_cycles(graph)
        assert "time/traversal" in text
        assert "c1" in text and "c2" in text
        edges = format_decision_edges(graph)
        assert "kind" in edges and "(cycle)" in edges


class TestVizHelpers:
    def test_format_table_alignment(self):
        table = format_table(("a", "bb"), [(1, 22), (333, 4)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")

    def test_format_kv_and_indent(self):
        block = format_kv([("key", 1), ("longer key", 2)])
        assert "key       " in block
        assert indent("x\ny", "> ") == "> x\n> y"

    def test_experiment_report_markdown(self, tmp_path):
        report = ExperimentReport("E1", "demo")
        report.add("states", 18, 18)
        report.add("delay", "120.2", "120.3", matches=False, note="off by 0.1")
        report.note("free-form note")
        markdown = report.to_markdown()
        assert "| states | 18 | 18 | yes |" in markdown
        assert not report.all_match
        assert "paper" in report.to_text()
        path = write_reports([report], tmp_path / "reports.md")
        assert path.read_text().startswith("### E1")

    def test_comparison_row_cells(self):
        row = ComparisonRow("q", "1", "2", False, "note")
        assert row.as_cells()[3] == "NO"


class TestCli:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        assert "simple-protocol" in capsys.readouterr().out

    def test_analyze_command(self, capsys):
        assert main(["analyze", "--model", "simple-protocol", "--transition", "t2"]) == 0
        output = capsys.readouterr().out
        assert "0.00285185" in output

    def test_reachability_command_with_table_and_dot(self, capsys, tmp_path):
        dot_path = tmp_path / "graph.dot"
        assert main(["reachability", "--table", "--dot", str(dot_path)]) == 0
        output = capsys.readouterr().out
        assert "states=18" in output
        assert dot_path.exists()

    def test_decision_command(self, capsys):
        assert main(["decision"]) == 0
        assert "1002" in capsys.readouterr().out

    def test_untimed_command(self, capsys):
        assert main(["untimed", "--model", "sliding-window"]) == 0
        output = capsys.readouterr().out
        assert "markings" in output
        assert "deadlock-free" in output

    def test_untimed_command_parallel_engine(self, capsys):
        assert main(
            ["untimed", "--model", "sliding-window", "--engine", "parallel", "--workers", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "parallel (2 workers)" in output

    def test_untimed_command_reports_unbounded(self, capsys):
        assert main(["untimed", "--model", "simple-protocol", "--max-states", "500"]) == 1
        assert "untimed reachability exceeded" in capsys.readouterr().out

    def test_untimed_command_batched_engine_with_stats(self, capsys):
        assert main(
            ["untimed", "--model", "sliding-window", "--engine", "batched", "--stats"]
        ) == 0
        output = capsys.readouterr().out
        assert "engine" in output and "batched" in output
        assert "build stats:" in output
        assert "states/s" in output
        assert "mean batch width" in output
        assert "dedup hit rate" in output

    def test_untimed_stats_not_recorded_for_reference_engine(self, capsys):
        assert main(
            ["untimed", "--model", "sliding-window", "--engine", "reference", "--stats"]
        ) == 0
        assert "build stats: not recorded by this engine" in capsys.readouterr().out

    def test_untimed_workers_require_parallel_engine(self):
        with pytest.raises(SystemExit, match="--workers requires --engine parallel"):
            main(["untimed", "--model", "sliding-window", "--workers", "2"])

    def test_reachability_workers_require_parallel_engine(self):
        # Both graph-building subcommands share one validation helper; the
        # message must stay identical on the timed path.
        with pytest.raises(SystemExit, match="--workers requires --engine parallel"):
            main(["reachability", "--workers", "2"])

    def test_reachability_rejects_batched_engine(self, capsys):
        # The timed builders have no batched backend; argparse rejects the
        # value up front (exit code 2).
        with pytest.raises(SystemExit) as exit_info:
            main(["reachability", "--engine", "batched"])
        assert exit_info.value.code == 2
        assert "invalid choice: 'batched'" in capsys.readouterr().err

    def test_untimed_invalid_worker_count_exits_cleanly(self):
        with pytest.raises(SystemExit, match="workers must be a positive integer"):
            main(
                ["untimed", "--model", "sliding-window", "--engine", "parallel", "--workers", "0"]
            )

    def test_analyze_handles_folded_committed_cycles(self, capsys):
        # The lossless sliding window has decision-free cycles off the anchor
        # path; the generalized collapse folds them, so analysis succeeds with
        # the closed-form 1/10 ms⁻¹ per-slot throughput.
        assert main(["analyze", "--model", "sliding-window"]) == 0
        output = capsys.readouterr().out
        assert "cycle time: 10 ms" in output

    def test_decision_renders_folded_cycles(self, capsys):
        assert main(["decision", "--model", "sliding-window"]) == 0
        output = capsys.readouterr().out
        assert "folded committed cycles" in output
        assert "(cycle)" in output
        assert "kind" in output

    def test_decision_no_fold_reports_unsupported_collapse(self, capsys):
        # --no-fold recovers the strict paper-shaped collapse and its
        # rejection diagnosis naming every committed cycle.
        assert main(["decision", "--model", "sliding-window", "--no-fold"]) == 1
        assert "decision-free cycle" in capsys.readouterr().out

    def test_performance_command_on_cyclic_protocol(self, capsys):
        assert main(["performance", "--model", "sliding-window",
                     "--transition", "w0_ack_return"]) == 0
        output = capsys.readouterr().out
        assert "terminal classes: 2" in output
        assert "settling probability" in output
        assert "1/10" in output
        assert "cycle time: 10 ms" in output

    def test_performance_command_on_paper_protocol(self, capsys):
        assert main(["performance", "--transition", "t2"]) == 0
        output = capsys.readouterr().out
        assert "terminal classes: 1 (ergodic)" in output
        assert "1805/632922" in output

    def test_performance_command_rejects_zero_time_cycles(self, capsys, tmp_path):
        from repro.petri.io import jsonio
        from test_decision_collapse import zero_time_cycle_net

        path = tmp_path / "zero-cycle.json"
        path.write_text(jsonio.dumps(zero_time_cycle_net()), encoding="utf-8")
        assert main(["performance", "--file", str(path)]) == 1
        assert "zero per-traversal time" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--model", "token-ring", "--horizon", "500"]) == 0
        assert "transmit_0" in capsys.readouterr().out

    def test_export_json_to_file_and_back(self, tmp_path, capsys):
        target = tmp_path / "exported.json"
        assert main(["export", "--format", "json", "--output", str(target)]) == 0
        net = load(target)
        assert len(net.transitions) == 9
        assert main(["export", "--format", "pnml"]) == 0
        assert "<pnml" in capsys.readouterr().out

    def test_export_dot(self, capsys):
        assert main(["export", "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_paper_command(self, capsys):
        assert main(["paper"]) == 0
        output = capsys.readouterr().out
        assert "exact match: True" in output
        assert "1002" in output

    def test_analyze_file_input(self, tmp_path, capsys):
        path = save(simple_protocol_net(), tmp_path / "model.json")
        assert main(["analyze", "--file", str(path), "--transition", "t2"]) == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--model", "no-such-model"])
