"""Tests for the symbolic hash-consing layer and the bounded derivation caches.

Covers the interning contract (canonical instances, identity preserved
through pickling round-trips, stat hooks) of
``Symbol``/``LinExpr``/``Polynomial``/``RatFunc``, and the LRU bounds that
keep the module-global branch-probability caches and the comparator's
Fourier–Motzkin entailment cache from growing without limit in long-running
services.
"""

from __future__ import annotations

import pickle
from fractions import Fraction

import pytest

from repro.reachability.algebra import (
    DEFAULT_BRANCH_CACHE_LIMIT,
    branch_cache_stats,
    clear_branch_caches,
    set_branch_cache_limit,
)
from repro.symbolic import (
    Constraint,
    ConstraintSet,
    LinExpr,
    Polynomial,
    RatFunc,
    Symbol,
    SymbolicComparator,
    clear_intern_tables,
    frequency_symbol,
    intern_stats,
    set_intern_table_limit,
    time_symbol,
)

_DEFAULT_INTERN_LIMIT = LinExpr._intern_limit


@pytest.fixture(autouse=True)
def _fresh_tables():
    clear_intern_tables()
    set_intern_table_limit(_DEFAULT_INTERN_LIMIT)
    yield
    clear_intern_tables()
    set_intern_table_limit(_DEFAULT_INTERN_LIMIT)


class TestExpressionInterning:
    def test_interned_returns_one_canonical_instance(self):
        a, b = time_symbol("A"), time_symbol("B")
        first = (LinExpr.from_symbol(a) - LinExpr.from_symbol(b)).interned()
        second = (LinExpr.from_symbol(a) - LinExpr.from_symbol(b)).interned()
        assert first is second
        stats = intern_stats()["linexpr"]
        assert stats["hits"] >= 1 and stats["misses"] >= 1
        assert stats["size"] >= 1

    def test_polynomial_and_ratfunc_interning(self):
        f4, f5 = frequency_symbol("f4"), frequency_symbol("f5")
        poly = (Polynomial.from_symbol(f4) + Polynomial.from_symbol(f5)).interned()
        again = (Polynomial.from_symbol(f5) + Polynomial.from_symbol(f4)).interned()
        assert poly is again
        quotient = (RatFunc(Polynomial.from_symbol(f4)) / RatFunc(poly)).interned()
        same = (RatFunc(Polynomial.from_symbol(f4)) / RatFunc(poly)).interned()
        assert quotient is same
        # The canonical RatFunc references canonical polynomials.
        assert quotient.denominator is poly

    def test_interning_is_advisory_not_an_equality_oracle(self):
        a = time_symbol("A")
        interned = (LinExpr.from_symbol(a) * 2).interned()
        fresh = LinExpr.from_symbol(a) * 2
        assert fresh is not interned
        assert fresh == interned  # structural equality unaffected

    def test_pickle_round_trip_preserves_identity(self):
        a, b = time_symbol("A"), time_symbol("B")
        expr = (LinExpr.from_symbol(a) - LinExpr.from_symbol(b) + 3).interned()
        clone = pickle.loads(pickle.dumps(expr))
        assert clone is expr
        # Even a non-canonical instance lands on the canonical one.
        fresh = LinExpr.from_symbol(a) - LinExpr.from_symbol(b) + 3
        assert pickle.loads(pickle.dumps(fresh)) is expr

    def test_pickle_round_trip_ratfunc_identity(self):
        f4, f5 = frequency_symbol("f4"), frequency_symbol("f5")
        quotient = (
            RatFunc(Polynomial.from_symbol(f4))
            / RatFunc(Polynomial.from_symbol(f4) + Polynomial.from_symbol(f5))
        ).interned()
        assert pickle.loads(pickle.dumps(quotient)) is quotient

    def test_symbol_identity_survives_pickling(self):
        symbol = time_symbol("E_t3")
        assert pickle.loads(pickle.dumps(symbol)) is symbol
        stats = intern_stats()["symbol"]
        assert stats["size"] >= 1

    def test_clear_preserves_symbol_table(self):
        symbol = time_symbol("KeepMe")
        (LinExpr.from_symbol(symbol)).interned()
        clear_intern_tables()
        assert intern_stats()["linexpr"]["size"] == 0
        # Symbol interning is a library-wide identity invariant; clearing the
        # expression tables must not break it.
        assert Symbol("KeepMe", "time") is symbol

    def test_stat_hook_shape(self):
        stats = intern_stats()
        for table in ("symbol", "linexpr", "polynomial", "ratfunc"):
            for field in ("size", "hits", "misses", "hit_rate"):
                assert field in stats[table]
        for table in ("linexpr", "polynomial", "ratfunc"):
            assert stats[table]["max_size"] > 0
            assert stats[table]["evictions"] == 0

    def test_intern_tables_are_lru_bounded(self):
        # The entailment path interns automatically, so the tables themselves
        # must be bounded for the comparator's LRU cap to bound memory at all.
        set_intern_table_limit(3)
        a = time_symbol("A")
        for offset in range(10):
            (LinExpr.from_symbol(a) + offset).interned()
        stats = intern_stats()["linexpr"]
        assert stats["size"] <= 3
        assert stats["evictions"] >= 7

    def test_evicted_canonical_stays_valid(self):
        set_intern_table_limit(1)
        a, b = time_symbol("A"), time_symbol("B")
        first = LinExpr.from_symbol(a).interned()
        LinExpr.from_symbol(b).interned()  # evicts `first` from the table
        # The evicted instance keeps answering for itself...
        assert first.interned() is first
        # ... while fresh equal expressions elect a new canonical; equality
        # is unaffected either way (interning is advisory).
        fresh = LinExpr.from_symbol(a).interned()
        assert fresh == first

    def test_invalid_intern_limit_rejected(self):
        with pytest.raises(ValueError, match="intern table limit"):
            set_intern_table_limit(0)


class TestEntailmentCacheLRU:
    def _constraints(self):
        a, b = time_symbol("A"), time_symbol("B")
        return ConstraintSet([Constraint.greater(a, b, label="1")])

    def test_hits_and_misses_counted(self):
        comparator = SymbolicComparator(self._constraints())
        a, b = time_symbol("A"), time_symbol("B")
        assert comparator.strictly_less(b, a)[0]
        assert comparator.strictly_less(b, a)[0]
        stats = comparator.cache_stats()
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1
        assert stats["evictions"] == 0
        assert stats["max_size"] > 0

    def test_cap_evicts_least_recently_used(self):
        comparator = SymbolicComparator(self._constraints(), cache_limit=2)
        a = time_symbol("A")
        for offset in range(5):
            comparator.is_nonnegative(LinExpr.from_symbol(a) + offset)
        stats = comparator.cache_stats()
        assert stats["size"] <= 2
        assert stats["evictions"] >= 3

    def test_eviction_only_costs_recomputation(self):
        bounded = SymbolicComparator(self._constraints(), cache_limit=1)
        unbounded = SymbolicComparator(self._constraints())
        a, b = time_symbol("A"), time_symbol("B")
        queries = [(b, a), (LinExpr.zero(), a), (b, a)]  # revisit an evicted key
        for left, right in queries:
            assert bounded.strictly_less(left, right) == unbounded.strictly_less(left, right)
        assert bounded.cache_stats()["evictions"] >= 1

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError, match="cache_limit"):
            SymbolicComparator(self._constraints(), cache_limit=0)


class TestBranchCacheLRU:
    def setup_method(self):
        clear_branch_caches()
        set_branch_cache_limit(DEFAULT_BRANCH_CACHE_LIMIT)

    def teardown_method(self):
        clear_branch_caches()
        set_branch_cache_limit(DEFAULT_BRANCH_CACHE_LIMIT)

    def test_stats_report_bound_and_evictions(self):
        stats = branch_cache_stats()
        for flavour in ("numeric", "symbolic"):
            assert stats[flavour]["max_size"] == DEFAULT_BRANCH_CACHE_LIMIT
            assert stats[flavour]["evictions"] == 0

    def test_lru_cap_enforced_on_numeric_cache(self):
        from repro.petri.builder import NetBuilder
        from repro.reachability import timed_reachability_graph

        set_branch_cache_limit(2)

        def decision_net(weight: int):
            builder = NetBuilder(f"decision-{weight}")
            builder.place("p", "choice pending", tokens=1)
            builder.transition("left", inputs=["p"], outputs=[], firing_time=1, frequency=weight)
            builder.transition("right", inputs=["p"], outputs=[], firing_time=1, frequency=1)
            return builder.build()

        for weight in range(2, 8):  # six distinct frequency tuples, cap of two
            timed_reachability_graph(decision_net(weight))
        stats = branch_cache_stats()["numeric"]
        assert stats["size"] <= 2
        assert stats["evictions"] >= 4

    def test_shrinking_limit_evicts_immediately(self):
        from repro.protocols import sliding_window_net
        from repro.reachability import timed_reachability_graph

        timed_reachability_graph(sliding_window_net(2, loss_probability=Fraction(1, 10)))
        before = branch_cache_stats()["numeric"]
        assert before["size"] >= 1
        set_branch_cache_limit(1)
        after = branch_cache_stats()["numeric"]
        assert after["size"] <= 1
        assert after["evictions"] >= before["size"] - 1

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError, match="cache limit"):
            set_branch_cache_limit(0)
