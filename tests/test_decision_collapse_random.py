"""Randomized property tests for the generalized decision-graph collapse.

Two seeded generators drive the properties:

* :func:`random_timed_net` — unstructured random timed nets in the style of
  ``test_engine_random.random_net`` (positive delays so the timed semantics
  are meaningful), which mostly exercise the classical collapse shapes, and
* :func:`random_committed_cycle_net` — a decision state feeding several
  disjoint deterministic rings, which *always* exercises committed-cycle
  folding with asymmetric cycle times and non-uniform settling
  probabilities (including, for some seeds, a zero-time ring that must be
  rejected by name).

The property under test: for every generated net whose timed reachability
graph closes, the collapse either succeeds — and every derived cycle-time
expression is a finite positive exact number (or the performance layer
refuses with a *named* diagnosis: dead state, several classes with the
legacy API, zero-time steady cycle) — or it is rejected up front with the
offending cycle named.  No mid-collapse crashes, no unnamed failures.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.exceptions import (
    NotErgodicError,
    PerformanceError,
    ReachabilityError,
    UnboundedNetError,
)
from repro.performance import PerformanceMetrics, embedded_chain_analysis
from repro.petri.builder import NetBuilder
from repro.reachability import (
    decision_graph,
    supports_decision_collapse,
    timed_reachability_graph,
)

SEEDS = list(range(60))
MAX_STATES = 3_000


def random_timed_net(seed: int):
    """A small seeded random timed net (strictly positive stage delays).

    Every transition consumes at least one token and takes at least 1 time
    unit to fire, so zero-time committed cycles cannot arise here (the
    structured generator below covers those); conflicts get random relative
    frequencies, making a good share of the states decision states.
    """
    rng = random.Random(seed)
    builder = NetBuilder(f"random-timed-{seed}")
    place_count = rng.randint(3, 6)
    places = [f"p{i}" for i in range(place_count)]
    for place in places:
        builder.place(place, tokens=rng.choice([0, 0, 1, 1, 2]))
    for t in range(rng.randint(3, 7)):
        inputs = {
            place: 1
            for place in rng.sample(places, rng.randint(1, min(2, place_count)))
        }
        outputs = {
            place: 1
            for place in rng.sample(places, rng.randint(0, min(2, place_count)))
        }
        builder.transition(
            f"t{t}",
            inputs=inputs,
            outputs=outputs,
            enabling_time=rng.choice([0, 0, 0, 1]),
            firing_time=rng.randint(1, 4),
            frequency=rng.randint(1, 3),
        )
    return builder.build()


def random_committed_cycle_net(seed: int):
    """A probabilistic choice into one of several deterministic rings.

    Returns ``(net, ring_specs)`` where ``ring_specs[k]`` is the pair
    ``(probability, cycle_time)`` of ring ``k`` — the ground truth the
    folded analysis must reproduce.  Ring delays are random; with seeds
    ``seed % 5 == 0`` one ring is all-zero-time, the shape the collapse must
    reject by name.
    """
    rng = random.Random(10_000 + seed)
    ring_count = rng.randint(2, 4)
    zero_ring = seed % 5 == 0
    builder = NetBuilder(f"random-rings-{seed}")
    builder.place("choice", tokens=1)
    frequencies = [rng.randint(1, 4) for _ in range(ring_count)]
    total_frequency = sum(frequencies)
    specs = []
    for ring in range(ring_count):
        length = rng.randint(1, 3)
        delays = [rng.randint(1, 5) for _ in range(length)]
        if zero_ring and ring == 0:
            delays = [0] * length
        entry_time = rng.randint(1, 3)
        for step in range(length):
            builder.place(f"r{ring}_s{step}")
        builder.transition(
            f"enter_{ring}",
            inputs=["choice"],
            outputs=[f"r{ring}_s0"],
            firing_time=entry_time,
            frequency=frequencies[ring],
        )
        for step in range(length):
            builder.transition(
                f"r{ring}_t{step}",
                inputs=[f"r{ring}_s{step}"],
                outputs=[f"r{ring}_s{(step + 1) % length}"],
                firing_time=delays[step],
            )
        specs.append(
            (Fraction(frequencies[ring], total_frequency), Fraction(sum(delays)))
        )
    return builder.build(), specs


class TestRandomTimedNets:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_collapse_never_crashes(self, seed):
        net = random_timed_net(seed)
        try:
            trg = timed_reachability_graph(net, max_states=MAX_STATES)
        except (UnboundedNetError, ReachabilityError):
            return  # graph construction limits, not the collapse's concern

        support = supports_decision_collapse(trg)
        if not support:
            # Rejection must name a concrete cycle and explain itself.
            assert support.cycle, f"seed {seed}: unnamed rejection"
            assert support.cycles
            assert support.reason and "cycle" in support.reason
            with pytest.raises(PerformanceError):
                decision_graph(trg)
            return

        graph = decision_graph(trg)
        assert graph.anchor_count == len(support.anchors)
        # Folded cycles (if any) line up with the support report.
        assert len(graph.folded_cycles) == len(support.folded)
        for folded in graph.folded_cycles:
            assert folded.cycle_time > 0

        try:
            metrics = PerformanceMetrics(graph)
            cycle_time = metrics.cycle_time()
        except NotErgodicError:
            return  # dead state reachable or similar — a named, graceful refusal
        except PerformanceError as error:
            assert "zero total time" in str(error)
            return
        assert isinstance(cycle_time, Fraction)
        assert cycle_time > 0, f"seed {seed}: non-positive cycle time {cycle_time}"

    @pytest.mark.parametrize("seed", SEEDS[:20])
    def test_strict_mode_is_a_subset(self, seed):
        """Anything the strict collapse accepts, the folding collapse accepts
        identically (no committed cycles -> same anchors, no synthetic)."""
        net = random_timed_net(seed)
        try:
            trg = timed_reachability_graph(net, max_states=MAX_STATES)
        except (UnboundedNetError, ReachabilityError):
            return
        strict = supports_decision_collapse(trg, fold_cycles=False)
        folding = supports_decision_collapse(trg)
        if strict:
            assert folding
            assert folding.anchors == strict.anchors
            assert folding.folded == ()
        else:
            assert strict.cycles == folding.cycles


class TestRandomCommittedCycles:
    @pytest.mark.parametrize("seed", [s for s in SEEDS if s % 5 != 0])
    def test_folded_rings_reproduce_ground_truth(self, seed):
        net, specs = random_committed_cycle_net(seed)
        trg = timed_reachability_graph(net, max_states=MAX_STATES)
        support = supports_decision_collapse(trg)
        assert support, f"seed {seed}: {support.reason}"
        assert len(support.folded) == len(specs)

        graph = decision_graph(trg)
        metrics = PerformanceMetrics(graph)
        decomposition = metrics.decomposition
        assert decomposition.class_count == len(specs)
        assert sum(terminal.probability for terminal in decomposition.classes) == 1

        # The folded cycle times are exactly the ring delays; the settling
        # probabilities are exactly the entry frequencies' shares.
        folded_times = sorted(cycle.cycle_time for cycle in graph.folded_cycles)
        assert folded_times == sorted(time for _, time in specs)

        # Expected long-run measures: E[ct] and E[1/ct]-style throughput.
        expected_cycle_time = sum(p * time for p, time in specs)
        assert metrics.cycle_time() == expected_cycle_time
        for ring, (probability, time) in enumerate(specs):
            # Each ring's first stage fires once per traversal of its ring.
            assert metrics.throughput(f"r{ring}_t0") == probability / time

        # Per-class embedded-chain cross-check: the independent solver agrees
        # on every class's mean cycle time.
        for index, terminal in enumerate(decomposition.classes):
            chain = embedded_chain_analysis(graph, terminal_class=index)
            rates_metrics = PerformanceMetrics(graph, terminal.rates)
            assert chain.mean_cycle_time == rates_metrics.cycle_time()

    @pytest.mark.parametrize("seed", [s for s in SEEDS if s % 5 == 0])
    def test_zero_time_ring_rejected_by_name(self, seed):
        net, _specs = random_committed_cycle_net(seed)
        trg = timed_reachability_graph(net, max_states=MAX_STATES)
        support = supports_decision_collapse(trg)
        assert not support
        assert "zero per-traversal time" in support.reason
        assert support.cycle
        with pytest.raises(PerformanceError, match="zero per-traversal time"):
            decision_graph(trg)
