"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; running them in-process (by
importing and calling their ``main``) keeps them from bit-rotting without
duplicating their logic in the test suite.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "paper_protocol_analysis", "symbolic_throughput"],
)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    output = capsys.readouterr().out
    assert output.strip(), f"example {name} produced no output"


def test_paper_protocol_example_reports_the_paper_value(capsys):
    _load("paper_protocol_analysis").main()
    output = capsys.readouterr().out
    assert "matches the paper's 18.05/(...) expression: True" in output
