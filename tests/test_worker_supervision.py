"""Parallel-engine supervision gate: crashes recover, exhaustion degrades.

A worker hard-killed mid-build (injected ``os._exit`` via
:mod:`repro.engine.faults`, indistinguishable from an OOM kill) must be
recovered **transparently**: the supervisor restarts the fleet, replays the
current BFS level from its retained records, and the finished graph is
bit-identical to the sequential engines — deterministic FIFO numbering
included.  When crashes repeat past the restart budget, the public builders
degrade to the sequential compiled engine with a ``RuntimeWarning`` and
still return the exact same graph.  Teardown must leave no zombie worker
processes in either scenario.

CI runs this module in the fault-injection step.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings

import pytest

from engine_diff import (
    assert_gspn_explorations_identical,
    assert_timed_graphs_identical,
    assert_untimed_graphs_identical,
    build_gspn_pair,
    build_timed_pair,
    build_untimed_pair,
)
from repro.engine import faults
from repro.engine.faults import FaultPlan
from repro.engine.parallel import MAX_RESTARTS
from repro.petri import reachability_graph
from repro.protocols import simple_protocol_net, token_ring_net
from repro.stochastic import GSPNAnalysis

WORKERS = 2


def _assert_no_zombies(before):
    """Every worker spawned since ``before`` must be joined within a grace
    period — the supervisor's teardown escalation guarantees it."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        alive = [p for p in multiprocessing.active_children() if p not in before]
        if not alive:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker processes left behind: {alive}")


class TestCrashRecovery:
    """A single injected crash recovers transparently, bit-identically."""

    @pytest.mark.parametrize("victim", range(WORKERS))
    @pytest.mark.parametrize("level", (0, 1))
    def test_untimed(self, victim, level):
        net = token_ring_net(5)
        _compiled, reference = build_untimed_pair(net)
        before = multiprocessing.active_children()
        with faults.inject(FaultPlan(crash_worker=(victim, level))):
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # recovery must be silent
                recovered = reachability_graph(
                    net, engine="parallel", workers=WORKERS
                )
        assert_untimed_graphs_identical(recovered, reference)
        _assert_no_zombies(before)

    def test_gspn(self):
        net = token_ring_net(5)
        _compiled, reference = build_gspn_pair(net)
        with faults.inject(FaultPlan(crash_worker=(1, 1))):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                recovered = GSPNAnalysis(net, engine="parallel", workers=WORKERS)
                recovered._explore()
        assert_gspn_explorations_identical(recovered, reference)

    def test_timed(self):
        from repro.reachability import timed_reachability_graph

        net = simple_protocol_net()
        _compiled, reference = build_timed_pair(net)
        with faults.inject(FaultPlan(crash_worker=(0, 1))):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                recovered = timed_reachability_graph(
                    net, engine="parallel", workers=WORKERS
                )
        assert_timed_graphs_identical(recovered, reference)


class TestDegradation:
    """Crashes past the restart budget degrade loudly but losslessly."""

    def test_untimed_degrades_with_warning(self):
        net = token_ring_net(5)
        _compiled, reference = build_untimed_pair(net)
        before = multiprocessing.active_children()
        # More scheduled crashes than the supervisor will retry: every
        # respawned fleet dies again until the budget is exhausted.
        plan = FaultPlan(crash_worker=(0, 0), crash_worker_repeats=MAX_RESTARTS + 5)
        with faults.inject(plan):
            with pytest.warns(RuntimeWarning, match="degrading to the sequential"):
                degraded = reachability_graph(net, engine="parallel", workers=WORKERS)
        assert_untimed_graphs_identical(degraded, reference)
        _assert_no_zombies(before)

    def test_gspn_degrades_with_warning(self):
        net = token_ring_net(5)
        _compiled, reference = build_gspn_pair(net)
        plan = FaultPlan(crash_worker=(1, 0), crash_worker_repeats=MAX_RESTARTS + 5)
        with faults.inject(plan):
            with pytest.warns(RuntimeWarning, match="degrading to the sequential"):
                degraded = GSPNAnalysis(net, engine="parallel", workers=WORKERS)
                degraded._explore()
        assert_gspn_explorations_identical(degraded, reference)
