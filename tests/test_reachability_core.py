"""Tests for timed states, the scalar algebras and the Figure-3 successor procedure."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.exceptions import InsufficientConstraintsError, ReachabilityError, SafenessViolationError
from repro.petri import Marking, NetBuilder
from repro.reachability import (
    SuccessorGenerator,
    TimedState,
    numeric_algebras,
    symbolic_algebras,
)
from repro.reachability.successors import STEP_ADVANCE, STEP_FIRE
from repro.symbolic import Constraint, ConstraintSet, LinExpr, as_expr, time_symbol

PLACES = ("p", "q", "r")


def state(tokens, ret=None, rft=None):
    return TimedState(Marking(PLACES, tokens), ret or {}, rft or {})


class TestTimedState:
    def test_zero_entries_are_dropped(self):
        s = state({"p": 1}, ret={"t": Fraction(0)}, rft={"u": LinExpr.zero()})
        assert not s.remaining_enabling
        assert not s.remaining_firing

    def test_equality_and_hash(self):
        a = state({"p": 1}, ret={"t": Fraction(3)})
        b = state({"p": 1}, ret={"t": Fraction(3)})
        c = state({"p": 1}, ret={"t": Fraction(4)})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_pending_entries(self):
        s = state({"p": 1}, ret={"t": Fraction(3)}, rft={"u": Fraction(5)})
        assert s.pending_entries() == {("RET", "t"): Fraction(3), ("RFT", "u"): Fraction(5)}
        assert s.has_pending_time()

    def test_is_symbolic(self):
        x = time_symbol("x")
        assert state({"p": 1}, ret={"t": as_expr(x)}).is_symbolic()
        assert not state({"p": 1}, ret={"t": Fraction(1)}).is_symbolic()

    def test_table_row(self):
        s = state({"p": 1, "r": 2}, ret={"a": Fraction(1000)}, rft={"b": Fraction("13.5")})
        row = s.table_row(PLACES, ("a", "b"))
        assert row == ("1", "0", "2", "1000", "0", "0", "13.5")

    def test_describe_mentions_clocks(self):
        s = state({"p": 1}, ret={"t": Fraction(3)})
        assert "RET" in s.describe()


class TestNumericAlgebra:
    def test_minimum_and_ties(self):
        time_algebra, _ = numeric_algebras()
        selection = time_algebra.minimum({"a": Fraction(5), "b": Fraction(3), "c": Fraction(3)})
        assert selection.value == 3
        assert set(selection.keys) == {"b", "c"}
        assert selection.used_constraints == ()

    def test_subtract_guards_negative(self):
        time_algebra, _ = numeric_algebras()
        with pytest.raises(ReachabilityError):
            time_algebra.subtract(Fraction(1), Fraction(2))

    def test_probabilities(self, paper_net):
        _, probability_algebra = numeric_algebras()
        conflict_set = paper_net.conflict_set_of("t4")
        probabilities = probability_algebra.branch_probabilities(conflict_set, ("t4", "t5"))
        assert probabilities["t4"] + probabilities["t5"] == 1


class TestSymbolicAlgebra:
    def test_minimum_uses_constraints(self):
        a, b = time_symbol("a"), time_symbol("b")
        constraints = ConstraintSet([Constraint.greater(a, b, label="only")])
        time_algebra, _ = symbolic_algebras(constraints)
        selection = time_algebra.minimum({"x": as_expr(a), "y": as_expr(b)})
        assert selection.value == as_expr(b)
        assert selection.keys == ("y",)
        assert selection.used_constraints == ("only",)

    def test_minimum_without_constraints_raises(self):
        a, b = time_symbol("a2"), time_symbol("b2")
        time_algebra, _ = symbolic_algebras(ConstraintSet([]))
        with pytest.raises(InsufficientConstraintsError):
            time_algebra.minimum({"x": as_expr(a), "y": as_expr(b)})

    def test_symbolic_probabilities_single_firable(self, symbolic_protocol):
        net, constraints, _symbols = symbolic_protocol
        _, probability_algebra = symbolic_algebras(constraints)
        conflict_set = net.conflict_set_of("t2")
        assert probability_algebra.branch_probabilities(conflict_set, ("t2",)) == {"t2": probability_algebra.one()}

    def test_symbolic_probabilities_ratio(self, symbolic_protocol):
        net, constraints, symbols = symbolic_protocol
        _, probability_algebra = symbolic_algebras(constraints)
        conflict_set = net.conflict_set_of("t4")
        probabilities = probability_algebra.branch_probabilities(conflict_set, ("t4", "t5"))
        total = probabilities["t4"] + probabilities["t5"]
        assert total == 1


def sequential_net():
    """p --a(2)--> q --b(3)--> r; a single deterministic chain."""
    builder = NetBuilder("seq")
    builder.transition("a", inputs=["p"], outputs=["q"], firing_time=2)
    builder.transition("b", inputs=["q"], outputs=["r"], firing_time=3)
    builder.mark("p")
    return builder.build()


class TestSuccessorProcedure:
    def make_generator(self, net, **kwargs):
        time_algebra, probability_algebra = numeric_algebras()
        return SuccessorGenerator(net, time_algebra, probability_algebra, **kwargs)

    def test_initial_state_sets_enabling_clocks(self, paper_net):
        generator = self.make_generator(paper_net)
        initial = generator.initial_state()
        assert initial.marking.to_dict() == {"p1": 1, "p8": 1}
        assert initial.remaining_enabling == {}  # t1 has E=0

    def test_fire_step_consumes_inputs_and_sets_rft(self):
        net = sequential_net()
        generator = self.make_generator(net)
        [edge] = generator.successors(generator.initial_state())
        assert edge.kind == STEP_FIRE
        assert edge.fired == ("a",)
        assert edge.delay == 0
        assert edge.probability == 1
        assert edge.target.marking.to_dict() == {}
        assert edge.target.rft("a") == 2

    def test_advance_step_completes_firings(self):
        net = sequential_net()
        generator = self.make_generator(net)
        fire_edge = generator.successors(generator.initial_state())[0]
        [advance] = generator.successors(fire_edge.target)
        assert advance.kind == STEP_ADVANCE
        assert advance.delay == 2
        assert advance.completed == ("a",)
        assert advance.target.marking.to_dict() == {"q": 1}

    def test_dead_state_has_no_successor(self):
        net = sequential_net()
        generator = self.make_generator(net)
        current = generator.initial_state()
        for _ in range(4):
            successors = generator.successors(current)
            current = successors[0].target
        assert generator.is_dead(current)
        assert generator.successors(current) == []

    def test_decision_state_generates_one_edge_per_choice(self, paper_net):
        generator = self.make_generator(paper_net)
        current = generator.initial_state()
        # fire t1, elapse 1 -> state 3 where t4/t5 are both firable.
        current = generator.successors(current)[0].target
        current = generator.successors(current)[0].target
        edges = generator.successors(current)
        assert len(edges) == 2
        assert {edge.fired[0] for edge in edges} == {"t4", "t5"}
        assert sum(edge.probability for edge in edges) == 1

    def test_probability_of_priority_conflict(self, paper_net):
        # When both t2 (freq 0) and t3 (freq 1) were firable, only t3 fires.
        generator = self.make_generator(paper_net)
        conflict_set = paper_net.conflict_set_of("t2")
        _, probability_algebra = numeric_algebras()
        assert probability_algebra.branch_probabilities(conflict_set, ("t2", "t3")) == {"t3": Fraction(1)}

    def test_enabling_time_counts_down(self, paper_net):
        generator = self.make_generator(paper_net)
        state3 = generator.successors(
            generator.successors(generator.initial_state())[0].target
        )[0].target
        # in state 3 the timeout has just been armed
        assert state3.ret("t3") == 1000

    def test_immediate_transition_fires_instantaneously(self):
        builder = NetBuilder("imm")
        builder.transition("now", inputs=["p"], outputs=["q"], firing_time=0)
        builder.transition("later", inputs=["q"], outputs=["r"], firing_time=7)
        builder.mark("p")
        generator = self.make_generator(builder.build())
        [edge] = generator.successors(generator.initial_state())
        assert edge.completed == ("now",)
        assert edge.target.marking.to_dict() == {"q": 1}

    def test_overlap_policy_error(self):
        # A transition whose output immediately re-enables it while it is
        # still firing violates the paper's restriction.
        builder = NetBuilder("overlap")
        builder.place("p", tokens=2)
        builder.transition("t", inputs=["p"], outputs=[], firing_time=5)
        net = builder.build()
        generator = self.make_generator(net)
        first = generator.successors(generator.initial_state())[0]
        with pytest.raises(SafenessViolationError):
            generator.successors(first.target)

    def test_overlap_policy_skip(self):
        builder = NetBuilder("overlap")
        builder.place("p", tokens=2)
        builder.transition("t", inputs=["p"], outputs=[], firing_time=5)
        net = builder.build()
        generator = self.make_generator(net, overlap_policy="skip")
        first = generator.successors(generator.initial_state())[0]
        [advance] = generator.successors(first.target)
        assert advance.kind == STEP_ADVANCE

    def test_unknown_overlap_policy_rejected(self, paper_net):
        with pytest.raises(ValueError):
            self.make_generator(paper_net, overlap_policy="whatever")
