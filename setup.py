"""Compatibility shim so editable installs work without PEP 517 build isolation.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working in offline environments whose
setuptools/pip lack the ``wheel`` package needed for PEP 660 editable wheels.
"""

from setuptools import setup

setup()
